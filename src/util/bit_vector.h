#ifndef RPQLEARN_UTIL_BIT_VECTOR_H_
#define RPQLEARN_UTIL_BIT_VECTOR_H_

#include <bit>
#include <cstdint>
#include <cstddef>
#include <vector>

#include "util/logging.h"

namespace rpqlearn {

/// Fixed-size packed bit set. Used for node sets (query results, samples)
/// and automata state sets, where `std::vector<bool>` is too slow for the
/// bulk operations the evaluation engine needs.
class BitVector {
 public:
  /// Bits per storage word; index `i` lives in word `i / kBitsPerWord`.
  static constexpr size_t kBitsPerWord = 64;

  BitVector() : size_(0) {}
  /// Creates `size` bits, all zero.
  explicit BitVector(size_t size)
      : size_(size), words_((size + 63) / 64, 0) {}

  size_t size() const { return size_; }
  size_t num_words() const { return words_.size(); }

  /// Raw storage word `wi` (bit `i` of the vector is bit `i % 64` of word
  /// `i / 64`). Bits beyond size() are always zero.
  uint64_t Word(size_t wi) const {
    RPQ_DCHECK(wi < words_.size());
    return words_[wi];
  }

  /// ORs `bits` into storage word `wi`. The caller must not set bits beyond
  /// size() (checked in debug builds) — every other operation relies on the
  /// tail of the last word staying zero.
  void OrWord(size_t wi, uint64_t bits) {
    RPQ_DCHECK(wi < words_.size());
    RPQ_DCHECK((wi + 1 < words_.size()) || (size_ % 64 == 0) ||
               (bits >> (size_ % 64)) == 0);
    words_[wi] |= bits;
  }

  /// The `width` bits starting at bit `base`, packed into the low bits of
  /// one word (bit j of the result = bit base + j of the vector). Requires
  /// width ≤ 64 and base + width ≤ size(). This is the word-at-a-time
  /// gather the dense evaluation rounds use to test a whole per-node state
  /// window of the frontier bitmap against a precomputed state mask,
  /// replacing per-bit Test calls.
  uint64_t Window(size_t base, size_t width) const {
    RPQ_DCHECK(width <= kBitsPerWord);
    RPQ_DCHECK(base + width <= size_);
    if (width == 0) return 0;
    const size_t wi = base >> 6;
    const size_t off = base & 63;
    uint64_t bits = words_[wi] >> off;
    if (off != 0 && wi + 1 < words_.size()) {
      bits |= words_[wi + 1] << (64 - off);
    }
    if (width < kBitsPerWord) bits &= (uint64_t{1} << width) - 1;
    return bits;
  }

  bool Test(size_t i) const {
    RPQ_DCHECK(i < size_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }
  void Set(size_t i) {
    RPQ_DCHECK(i < size_);
    words_[i >> 6] |= uint64_t{1} << (i & 63);
  }
  void Reset(size_t i) {
    RPQ_DCHECK(i < size_);
    words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
  }
  void Assign(size_t i, bool value) {
    if (value) {
      Set(i);
    } else {
      Reset(i);
    }
  }

  /// Sets all bits to zero.
  void Clear() {
    for (auto& w : words_) w = 0;
  }

  /// Number of set bits.
  size_t Count() const {
    size_t total = 0;
    for (uint64_t w : words_) total += static_cast<size_t>(std::popcount(w));
    return total;
  }

  /// True iff any bit is set.
  bool Any() const {
    for (uint64_t w : words_) {
      if (w != 0) return true;
    }
    return false;
  }
  bool None() const { return !Any(); }

  /// In-place union; sizes must match.
  void OrWith(const BitVector& other) {
    RPQ_DCHECK(size_ == other.size_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  }
  /// In-place intersection; sizes must match.
  void AndWith(const BitVector& other) {
    RPQ_DCHECK(size_ == other.size_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  }
  /// In-place difference (`this \ other`); sizes must match.
  void SubtractWith(const BitVector& other) {
    RPQ_DCHECK(size_ == other.size_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
  }

  /// True iff every set bit of `this` is also set in `other`.
  bool IsSubsetOf(const BitVector& other) const {
    RPQ_DCHECK(size_ == other.size_);
    for (size_t i = 0; i < words_.size(); ++i) {
      if ((words_[i] & ~other.words_[i]) != 0) return false;
    }
    return true;
  }

  /// Invokes `fn(index)` for every set bit, ascending, without allocating.
  /// The word-at-a-time scan (countr_zero + clear-lowest) is what the dense
  /// evaluation rounds use to drain frontier bitmaps.
  template <typename Fn>
  void ForEachSetBit(Fn&& fn) const {
    for (size_t wi = 0; wi < words_.size(); ++wi) {
      uint64_t w = words_[wi];
      while (w != 0) {
        const int bit = std::countr_zero(w);
        fn(wi * kBitsPerWord + static_cast<size_t>(bit));
        w &= w - 1;
      }
    }
  }

  /// Indices of all set bits, ascending.
  std::vector<uint32_t> ToIndices() const {
    std::vector<uint32_t> out;
    out.reserve(Count());
    for (size_t wi = 0; wi < words_.size(); ++wi) {
      uint64_t w = words_[wi];
      while (w != 0) {
        int bit = std::countr_zero(w);
        out.push_back(static_cast<uint32_t>(wi * 64 + bit));
        w &= w - 1;
      }
    }
    return out;
  }

  friend bool operator==(const BitVector& a, const BitVector& b) {
    return a.size_ == b.size_ && a.words_ == b.words_;
  }

 private:
  size_t size_;
  std::vector<uint64_t> words_;
};

}  // namespace rpqlearn

#endif  // RPQLEARN_UTIL_BIT_VECTOR_H_
