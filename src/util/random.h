#ifndef RPQLEARN_UTIL_RANDOM_H_
#define RPQLEARN_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace rpqlearn {

/// Deterministic, seedable PRNG (xoshiro256**). All randomized components of
/// the library take an explicit Rng so experiments are reproducible.
class Rng {
 public:
  /// Seeds the generator; two Rng instances with equal seeds produce
  /// identical streams.
  explicit Rng(uint64_t seed);

  /// Returns a uniformly distributed 64-bit value.
  uint64_t Next();

  /// Returns a uniform integer in `[0, bound)`. `bound` must be positive.
  uint64_t NextBelow(uint64_t bound);

  /// Returns a uniform integer in `[lo, hi]` (inclusive).
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Returns a uniform double in `[0, 1)`.
  double NextDouble();

  /// Returns true with probability `p`.
  bool NextBernoulli(double p) { return NextDouble() < p; }

  /// Fisher–Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (size_t i = items->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBelow(i));
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

  /// Samples `count` distinct indices from `[0, population)` without
  /// replacement (Floyd's algorithm); the result is unsorted.
  std::vector<uint32_t> SampleWithoutReplacement(uint32_t population,
                                                 uint32_t count);

 private:
  uint64_t state_[4];
};

/// Draws from a Zipfian distribution over ranks `{0, ..., n-1}` where rank r
/// has probability proportional to `1 / (r+1)^exponent`. Used for edge-label
/// distributions of the synthetic graphs (Sec. 5.1 of the paper).
class ZipfDistribution {
 public:
  /// `n` must be positive; `exponent` is the Zipf skew (1.0 = classic Zipf).
  ZipfDistribution(uint32_t n, double exponent);

  /// Samples a rank in `[0, n)`.
  uint32_t Sample(Rng* rng) const;

  /// Probability mass of rank `r`.
  double Probability(uint32_t r) const;

  uint32_t size() const { return static_cast<uint32_t>(cdf_.size()); }

 private:
  std::vector<double> cdf_;
};

}  // namespace rpqlearn

#endif  // RPQLEARN_UTIL_RANDOM_H_
