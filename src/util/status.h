#ifndef RPQLEARN_UTIL_STATUS_H_
#define RPQLEARN_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace rpqlearn {

/// Error categories used across the library. Modeled after the small set of
/// codes that database engines (Arrow, RocksDB) actually discriminate on.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kResourceExhausted,  ///< a configured state/size/memory cap was hit
  kFailedPrecondition,
  kAbstain,  ///< the learner abstained (the paper's `null` answer)
  kInternal,
  kDeadlineExceeded,  ///< an ExecContext wall-clock deadline elapsed
  kCancelled,         ///< an ExecContext was cancelled by its owner
};

/// A lightweight success-or-error result, used instead of exceptions for all
/// fallible public operations (parsing, IO, capped searches).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Abstain(std::string msg) {
    return Status(StatusCode::kAbstain, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "InvalidArgument: bad regex".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type `T` or an error `Status`. Minimal analogue of
/// `absl::StatusOr` / `arrow::Result`.
template <typename T>
class StatusOr {
 public:
  /// Implicit conversion from a value makes `return value;` work.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit conversion from an error status.
  StatusOr(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {}

  bool ok() const { return status_.ok() && value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace rpqlearn

#endif  // RPQLEARN_UTIL_STATUS_H_
