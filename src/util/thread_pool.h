#ifndef RPQLEARN_UTIL_THREAD_POOL_H_
#define RPQLEARN_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace rpqlearn {

class ExecContext;

namespace internal {

/// Shared completion slot behind TaskFuture. All cross-thread traffic —
/// result, exception, readiness — goes through `mutex`, so every
/// happens-before edge is visible to TSan even when the standard library
/// itself is uninstrumented. (std::future synchronizes through atomics
/// inside libstdc++; when that .so is built without TSan, the tool cannot
/// see the release/acquire pair and reports a false race between the
/// worker's destruction of the shared state and the consumer's read of the
/// result. See ThreadPoolTest.ExceptionPropagatesOutOfSubmit.)
template <typename R>
struct TaskState {
  std::mutex mutex;
  std::condition_variable ready_cv;
  bool ready = false;
  std::exception_ptr error;
  std::optional<R> value;
};

template <>
struct TaskState<void> {
  std::mutex mutex;
  std::condition_variable ready_cv;
  bool ready = false;
  std::exception_ptr error;
};

}  // namespace internal

/// One-shot future for a task submitted to ThreadPool. Move-only; `Get()`
/// blocks until the task finishes, then returns its result or rethrows the
/// exception it threw. Unlike std::future, `Get()` *moves* the result and
/// any stored exception out of the shared state before releasing the lock,
/// so their destruction always happens on the consuming thread — never
/// concurrently on the worker that produced them.
template <typename R>
class TaskFuture {
 public:
  TaskFuture() = default;
  explicit TaskFuture(std::shared_ptr<internal::TaskState<R>> state)
      : state_(std::move(state)) {}

  TaskFuture(TaskFuture&&) = default;
  TaskFuture& operator=(TaskFuture&&) = default;
  TaskFuture(const TaskFuture&) = delete;
  TaskFuture& operator=(const TaskFuture&) = delete;

  bool valid() const { return state_ != nullptr; }

  /// Waits for completion, then returns the task's result (rethrows its
  /// exception). Consumes the future: `valid()` is false afterwards.
  R Get() {
    std::shared_ptr<internal::TaskState<R>> state = std::move(state_);
    std::unique_lock<std::mutex> lock(state->mutex);
    state->ready_cv.wait(lock, [&] { return state->ready; });
    std::exception_ptr error = std::move(state->error);
    if (error) {
      lock.unlock();
      std::rethrow_exception(error);
    }
    if constexpr (!std::is_void_v<R>) {
      R result = std::move(*state->value);
      state->value.reset();
      lock.unlock();
      return result;
    }
  }

 private:
  std::shared_ptr<internal::TaskState<R>> state_;
};

/// Fixed-size thread pool: a single locked FIFO queue drained by `num_threads`
/// workers — deliberately work-stealing-free, so scheduling is easy to reason
/// about and the pool stays small enough to audit under TSan. Used by the
/// parallel evaluation layer (src/query/eval.cc), whose tasks are coarse
/// (one 64-source batch or one node-range sweep each), so queue contention is
/// negligible.
///
/// Destruction drains the queue: tasks already submitted still run to
/// completion before the workers join, so a future obtained from `Submit` is
/// always eventually satisfied.
class ThreadPool {
 public:
  /// Spawns exactly `num_threads` workers (must be ≥ 1).
  explicit ThreadPool(uint32_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Runs every queued task, then joins all workers.
  ~ThreadPool();

  uint32_t num_threads() const {
    return static_cast<uint32_t>(workers_.size());
  }

  /// Enqueues `task` and returns a TaskFuture for its result. An exception
  /// thrown by the task is captured and rethrown from `future.Get()`.
  template <typename F>
  auto Submit(F task) -> TaskFuture<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto state = std::make_shared<internal::TaskState<R>>();
    auto wrapper = [state, task = std::move(task)]() mutable {
      std::exception_ptr error;
      if constexpr (std::is_void_v<R>) {
        try {
          task();
        } catch (...) {
          error = std::current_exception();
        }
        std::lock_guard<std::mutex> lock(state->mutex);
        state->error = std::move(error);
        state->ready = true;
      } else {
        std::optional<R> result;
        try {
          result.emplace(task());
        } catch (...) {
          error = std::current_exception();
        }
        std::lock_guard<std::mutex> lock(state->mutex);
        state->value = std::move(result);
        state->error = std::move(error);
        state->ready = true;
      }
      // Notify while the worker still holds its shared_ptr, so the state
      // cannot be destroyed underneath the notify.
      state->ready_cv.notify_all();
    };
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back(std::move(wrapper));
    }
    wake_workers_.notify_one();
    return TaskFuture<R>(std::move(state));
  }

  /// Runs `fn(worker, index)` for every index in [0, count), dynamically
  /// load-balanced over at most `num_workers` concurrent executors: the
  /// calling thread is worker 0 and up to min(num_workers - 1, num_threads())
  /// pool threads join as workers 1, 2, …. Worker ids are dense, so callers
  /// can index per-worker scratch arrays with them; an id is owned by exactly
  /// one thread for the whole call, but which *indices* a worker draws is
  /// scheduling-dependent — `fn` must not let its output depend on the
  /// assignment (write to per-index or per-worker slots).
  ///
  /// Blocks until every index has run. If one or more invocations throw, the
  /// remaining indices are abandoned, all executors are drained, and the
  /// first captured exception is rethrown on the calling thread.
  ///
  /// Re-entrant calls — a task running on this pool starting a nested
  /// ParallelFor on the same pool — execute the whole loop inline on the
  /// calling worker (helpers would queue behind it and deadlock).
  ///
  /// When `exec` is non-null, executors stop drawing fresh indices as soon as
  /// the context trips: indices already being processed finish (or bail at
  /// their own checkpoints), remaining ones are abandoned. The caller is
  /// responsible for discarding the partial result when `exec->tripped()`.
  void ParallelFor(uint32_t num_workers, size_t count,
                   const std::function<void(uint32_t worker, size_t index)>& fn,
                   const ExecContext* exec = nullptr);

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable wake_workers_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace rpqlearn

#endif  // RPQLEARN_UTIL_THREAD_POOL_H_
