#ifndef RPQLEARN_UTIL_THREAD_POOL_H_
#define RPQLEARN_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace rpqlearn {

class ExecContext;

/// Fixed-size thread pool: a single locked FIFO queue drained by `num_threads`
/// workers — deliberately work-stealing-free, so scheduling is easy to reason
/// about and the pool stays small enough to audit under TSan. Used by the
/// parallel evaluation layer (src/query/eval.cc), whose tasks are coarse
/// (one 64-source batch or one node-range sweep each), so queue contention is
/// negligible.
///
/// Destruction drains the queue: tasks already submitted still run to
/// completion before the workers join, so a future obtained from `Submit` is
/// always eventually satisfied.
class ThreadPool {
 public:
  /// Spawns exactly `num_threads` workers (must be ≥ 1).
  explicit ThreadPool(uint32_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Runs every queued task, then joins all workers.
  ~ThreadPool();

  uint32_t num_threads() const {
    return static_cast<uint32_t>(workers_.size());
  }

  /// Enqueues `task` and returns a future for its result. An exception
  /// thrown by the task is captured and rethrown from `future.get()`.
  template <typename F>
  auto Submit(F task) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto packaged =
        std::make_shared<std::packaged_task<R()>>(std::move(task));
    std::future<R> future = packaged->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back([packaged] { (*packaged)(); });
    }
    wake_workers_.notify_one();
    return future;
  }

  /// Runs `fn(worker, index)` for every index in [0, count), dynamically
  /// load-balanced over at most `num_workers` concurrent executors: the
  /// calling thread is worker 0 and up to min(num_workers - 1, num_threads())
  /// pool threads join as workers 1, 2, …. Worker ids are dense, so callers
  /// can index per-worker scratch arrays with them; an id is owned by exactly
  /// one thread for the whole call, but which *indices* a worker draws is
  /// scheduling-dependent — `fn` must not let its output depend on the
  /// assignment (write to per-index or per-worker slots).
  ///
  /// Blocks until every index has run. If one or more invocations throw, the
  /// remaining indices are abandoned, all executors are drained, and the
  /// first captured exception is rethrown on the calling thread.
  ///
  /// Re-entrant calls — a task running on this pool starting a nested
  /// ParallelFor on the same pool — execute the whole loop inline on the
  /// calling worker (helpers would queue behind it and deadlock).
  ///
  /// When `exec` is non-null, executors stop drawing fresh indices as soon as
  /// the context trips: indices already being processed finish (or bail at
  /// their own checkpoints), remaining ones are abandoned. The caller is
  /// responsible for discarding the partial result when `exec->tripped()`.
  void ParallelFor(uint32_t num_workers, size_t count,
                   const std::function<void(uint32_t worker, size_t index)>& fn,
                   const ExecContext* exec = nullptr);

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable wake_workers_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace rpqlearn

#endif  // RPQLEARN_UTIL_THREAD_POOL_H_
