#include "util/string_util.h"

namespace rpqlearn {

std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += separator;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(std::string_view text, char separator) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(separator, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         (text[begin] == ' ' || text[begin] == '\t' || text[begin] == '\r' ||
          text[begin] == '\n')) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         (text[end - 1] == ' ' || text[end - 1] == '\t' ||
          text[end - 1] == '\r' || text[end - 1] == '\n')) {
    --end;
  }
  return text.substr(begin, end - begin);
}

}  // namespace rpqlearn
