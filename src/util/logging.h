#ifndef RPQLEARN_UTIL_LOGGING_H_
#define RPQLEARN_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace rpqlearn {
namespace internal {

/// Terminates the process after streaming a fatal diagnostic. Used by the
/// CHECK macros below; invariant violations are programming errors, so we
/// abort rather than propagate Status.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line) {
    stream_ << "FATAL " << file << ":" << line << ": ";
  }
  [[noreturn]] ~FatalLogMessage() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace rpqlearn

/// Aborts with a message when `condition` is false.
#define RPQ_CHECK(condition)                                        \
  if (!(condition))                                                 \
  ::rpqlearn::internal::FatalLogMessage(__FILE__, __LINE__).stream() \
      << "Check failed: " #condition " "

#define RPQ_CHECK_EQ(a, b) RPQ_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define RPQ_CHECK_NE(a, b) RPQ_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define RPQ_CHECK_LT(a, b) RPQ_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define RPQ_CHECK_LE(a, b) RPQ_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define RPQ_CHECK_GT(a, b) RPQ_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define RPQ_CHECK_GE(a, b) RPQ_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

/// Aborts when a Status-returning expression fails. For use in tests,
/// examples, and benches where failure is unrecoverable.
#define RPQ_CHECK_OK(expr)                                  \
  do {                                                      \
    const ::rpqlearn::Status _rpq_st = (expr);              \
    RPQ_CHECK(_rpq_st.ok()) << _rpq_st.ToString();          \
  } while (false)

#ifndef NDEBUG
#define RPQ_DCHECK(condition) RPQ_CHECK(condition)
#else
#define RPQ_DCHECK(condition) \
  if (false) RPQ_CHECK(condition)
#endif

#endif  // RPQLEARN_UTIL_LOGGING_H_
