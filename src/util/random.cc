#include "util/random.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace rpqlearn {
namespace {

/// SplitMix64, used to expand the user seed into the xoshiro state.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  RPQ_CHECK_GT(bound, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  while (true) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  RPQ_CHECK_LE(lo, hi);
  return lo + static_cast<int64_t>(
                  NextBelow(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  // 53 high-quality bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

std::vector<uint32_t> Rng::SampleWithoutReplacement(uint32_t population,
                                                    uint32_t count) {
  RPQ_CHECK_LE(count, population);
  std::unordered_set<uint32_t> chosen;
  std::vector<uint32_t> result;
  result.reserve(count);
  for (uint32_t j = population - count; j < population; ++j) {
    uint32_t t = static_cast<uint32_t>(NextBelow(j + 1));
    if (chosen.insert(t).second) {
      result.push_back(t);
    } else {
      chosen.insert(j);
      result.push_back(j);
    }
  }
  return result;
}

ZipfDistribution::ZipfDistribution(uint32_t n, double exponent) {
  RPQ_CHECK_GT(n, 0u);
  cdf_.resize(n);
  double total = 0.0;
  for (uint32_t r = 0; r < n; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r) + 1.0, exponent);
    cdf_[r] = total;
  }
  for (double& c : cdf_) c /= total;
}

uint32_t ZipfDistribution::Sample(Rng* rng) const {
  double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return static_cast<uint32_t>(cdf_.size() - 1);
  return static_cast<uint32_t>(it - cdf_.begin());
}

double ZipfDistribution::Probability(uint32_t r) const {
  RPQ_CHECK_LT(r, cdf_.size());
  return r == 0 ? cdf_[0] : cdf_[r] - cdf_[r - 1];
}

}  // namespace rpqlearn
