#include "workloads/workloads.h"

#include "graph/generators.h"
#include "query/path_query.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace rpqlearn {
namespace {

/// "(l5+l6+...+l9)" for a contiguous label-rank range [lo, hi].
std::string Group(int lo, int hi) {
  std::vector<std::string> parts;
  for (int i = lo; i <= hi; ++i) parts.push_back("l" + std::to_string(i));
  return "(" + Join(parts, "+") + ")";
}

void AddQuery(Dataset* dataset, const std::string& name,
              const std::string& regex, double paper_selectivity) {
  Alphabet alphabet = dataset->graph.alphabet();  // copy: parse must not
                                                  // extend the graph alphabet
  StatusOr<PathQuery> parsed =
      PathQuery::Parse(regex, &alphabet, dataset->graph.num_symbols());
  RPQ_CHECK(parsed.ok()) << parsed.status().ToString() << " in " << regex;
  Workload w;
  w.name = name;
  w.regex = regex;
  w.query = parsed->dfa();
  w.paper_selectivity = paper_selectivity;
  dataset->queries.push_back(std::move(w));
}

}  // namespace

Dataset BuildAlibabaDataset(uint64_t seed) {
  Dataset dataset;
  dataset.name = "alibaba";

  ScaleFreeOptions options;
  options.num_nodes = 3000;
  options.num_edges = 8000;
  options.num_labels = 24;
  options.zipf_exponent = 0.8;
  options.preferential_probability = 0.6;
  options.seed = seed;
  Graph base = GenerateScaleFree(options);

  // The paper's most selective queries (bio1: 0.03% = 1 node, bio2: 0.2%)
  // hinge on labels far rarer than a 50-label Zipf tail provides, so two
  // extra labels are planted sparsely: "b0" (1 edge, bio1's start) and
  // "a0" (a handful of edges, bio2's middle symbol). Everything else is the
  // untouched scale-free graph.
  GraphBuilder builder;
  builder.AddNodes(base.num_nodes());
  for (NodeId v = 0; v < base.num_nodes(); ++v) {
    for (const LabeledEdge& e : base.OutEdges(v)) {
      builder.AddEdge(v, base.alphabet().Name(e.label), e.node);
    }
  }
  // A target with an outgoing A-group edge (ranks 2..11), so that b0·A·A*
  // (bio1) selects the planted source.
  Rng plant_rng(seed ^ 0x5eedULL);
  auto find_a_capable = [&](NodeId start) {
    for (NodeId offset = 0; offset < base.num_nodes(); ++offset) {
      NodeId v = (start + offset) % base.num_nodes();
      for (const LabeledEdge& e : base.OutEdges(v)) {
        if (e.label >= 3 && e.label <= 6) return v;
      }
    }
    return start;
  };
  NodeId b0_target =
      find_a_capable(static_cast<NodeId>(plant_rng.NextBelow(3000)));
  NodeId b0_source = static_cast<NodeId>(plant_rng.NextBelow(3000));
  builder.AddEdge(b0_source, "b0", b0_target);
  // bio2 = C·C*·a0·A·A*: its selected nodes are C-predecessors of the a0
  // sources, so plant a0 edges at nodes that have an incoming C-group edge
  // (ranks 10..19).
  auto find_c_reachable = [&](NodeId start) {
    for (NodeId offset = 0; offset < base.num_nodes(); ++offset) {
      NodeId v = (start + offset) % base.num_nodes();
      for (const LabeledEdge& e : base.InEdges(v)) {
        if (e.label >= 10 && e.label <= 13) return v;
      }
    }
    return start;
  };
  for (int i = 0; i < 2; ++i) {
    NodeId target =
        find_a_capable(static_cast<NodeId>(plant_rng.NextBelow(3000)));
    NodeId source =
        find_c_reachable(static_cast<NodeId>(plant_rng.NextBelow(3000)));
    builder.AddEdge(source, "a0", target);
  }
  dataset.graph = builder.Build();

  // Label groups for the Table 1 query structures. Ranks are frequency
  // ranks under the Zipf distribution (l0 most frequent); groups overlap,
  // as the paper notes. Calibrated against Table 1 selectivities.
  const std::string a_group = Group(3, 6);     // A: mid-frequency
  const std::string i_group = Group(6, 9);     // I: overlaps A on l6
  const std::string c_group = Group(10, 13);   // C
  const std::string e_group = Group(14, 17);   // E
  const std::string b_rare = "b0";             // planted, 1 edge
  const std::string a_rare = "a0";             // planted, 2 edges

  AddQuery(&dataset, "bio1", b_rare + "." + a_group + "." + a_group + "*",
           0.0003);
  AddQuery(&dataset, "bio2",
           c_group + "." + c_group + "*." + a_rare + "." + a_group + "." +
               a_group + "*",
           0.002);
  AddQuery(&dataset, "bio3", c_group + "." + e_group, 0.03);
  AddQuery(&dataset, "bio4", i_group + "." + i_group + "." + i_group + "*",
           0.11);
  AddQuery(&dataset, "bio5",
           a_group + "." + a_group + "." + a_group + "*." + i_group + "." +
               i_group + "." + i_group + "*",
           0.12);
  AddQuery(&dataset, "bio6", a_group + "." + a_group + "." + a_group + "*",
           0.22);
  return dataset;
}

Dataset BuildSyntheticDataset(uint32_t num_nodes, uint64_t seed) {
  Dataset dataset;
  dataset.name = "syn" + std::to_string(num_nodes);

  ScaleFreeOptions options;
  options.num_nodes = num_nodes;
  options.num_edges = static_cast<size_t>(num_nodes) * 3;
  options.num_labels = 24;
  options.zipf_exponent = 0.9;
  options.preferential_probability = 0.6;
  options.seed = seed;
  dataset.graph = GenerateScaleFree(options);

  // syn1..syn3: A·B*·C with selectivities 1%, 15%, 40% regardless of graph
  // size (Sec. 5.1). Rarer groups give lower selectivity.
  AddQuery(&dataset, "syn1",
           Group(20, 21) + "." + Group(14, 17) + "*." + Group(22, 23), 0.01);
  AddQuery(&dataset, "syn2",
           Group(8, 11) + "." + Group(6, 9) + "*." + Group(9, 13), 0.15);
  AddQuery(&dataset, "syn3",
           Group(1, 6) + "." + Group(3, 8) + "*." + Group(2, 7), 0.40);
  return dataset;
}

}  // namespace rpqlearn
