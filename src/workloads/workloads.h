#ifndef RPQLEARN_WORKLOADS_WORKLOADS_H_
#define RPQLEARN_WORKLOADS_WORKLOADS_H_

#include <string>
#include <vector>

#include "automata/dfa.h"
#include "graph/graph.h"

namespace rpqlearn {

/// One goal query of an evaluation dataset.
struct Workload {
  std::string name;          ///< "bio1".."bio6", "syn1".."syn3"
  std::string regex;         ///< display form, e.g. "C.E"
  Dfa query{0};              ///< canonical DFA over the dataset's alphabet
  double paper_selectivity;  ///< fraction of nodes the paper reports
};

/// A dataset: a graph plus its goal queries.
struct Dataset {
  std::string name;
  Graph graph;
  std::vector<Workload> queries;
};

/// The AliBaba substitute (see DESIGN.md): the paper's real protein-
/// interaction graph is not redistributable, so we generate a scale-free
/// graph matching its published shape — ~3k nodes, ~8k edges, skewed label
/// distribution — and instantiate bio1..bio6 from Table 1: same regex
/// structure (disjunctions A, C, E, I of ≤10 overlapping symbols), with
/// label groups calibrated so the measured selectivities approximate the
/// paper's 0.03%..22% range and preserve the ordering.
Dataset BuildAlibabaDataset(uint64_t seed = 42);

/// The synthetic datasets of Sec. 5.1: scale-free graphs with Zipfian edge
/// labels, `num_nodes` ∈ {10000, 20000, 30000} in the paper, three times as
/// many edges, and queries syn1..syn3 of the form A·B*·C with target
/// selectivities 1%, 15%, 40%.
Dataset BuildSyntheticDataset(uint32_t num_nodes, uint64_t seed = 42);

}  // namespace rpqlearn

#endif  // RPQLEARN_WORKLOADS_WORKLOADS_H_
