#ifndef RPQLEARN_GRAPH_DYNAMIC_H_
#define RPQLEARN_GRAPH_DYNAMIC_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "graph/condense.h"
#include "graph/graph.h"
#include "graph/shard.h"
#include "query/eval.h"
#include "query/eval_incremental.h"
#include "util/status.h"

namespace rpqlearn {

/// Telemetry of incremental structure maintenance: how often each repair
/// path fired. The condense_* counters sum over every maintained update
/// (one per update when condensation maintenance is on); see CondenseRepair
/// for what each path does.
struct MaintenanceStats {
  /// Successful InsertEdge / DeleteEdge calls (graph mutated).
  uint64_t inserts = 0;
  uint64_t deletes = 0;
  /// No-op calls: inserting a live edge or deleting an absent one.
  uint64_t rejected_updates = 0;
  uint64_t compactions = 0;
  /// Updates routed into the maintained ShardedGraph (internal cells for
  /// same-shard edges, boundary cells of both owners for cross-shard).
  uint64_t shard_same_shard_updates = 0;
  uint64_t shard_cross_shard_updates = 0;
  /// CondenseRepair outcome tallies.
  uint64_t condense_untouched_labels = 0;
  uint64_t condense_no_structural_change = 0;
  uint64_t condense_dag_rebuilds = 0;
  uint64_t condense_retarjans = 0;
  /// Compactions triggered by the pending-delta threshold policy (a subset
  /// of `compactions`).
  uint64_t auto_compactions = 0;
};

/// Owns a Graph plus optional *maintained* derived-structure snapshots — a
/// ShardedGraph partition view and a per-label CondensedGraph — kept
/// consistent with the live edge set across InsertEdge / DeleteEdge by
/// incremental repair instead of rebuild-from-scratch. This is the serving
/// shape for a mutating graph: the interactive loop (and any evaluation
/// call) borrows the snapshots through WithCaches(), and the version keying
/// (Graph::version ↔ graph_version of each snapshot) guarantees the
/// evaluation engines can never read a snapshot that missed an update.
/// Materialized query results (Materialize / MaterializeMonadic) ride the
/// same update routing: their retained fixed points are repaired in place by
/// delta-frontier re-seeding as edges arrive.
///
/// Mutations must be externally synchronized against readers, exactly like
/// Graph itself. All maintenance is deterministic: a DynamicGraph that
/// replayed the same updates holds bit-identical snapshots.
class DynamicGraph {
 public:
  static constexpr size_t kDefaultAutoCompactThreshold = 256;

  explicit DynamicGraph(Graph graph) : graph_(std::move(graph)) {}

  const Graph& graph() const { return graph_; }

  /// Builds (or re-builds at a new shard count) the maintained partition
  /// view; subsequent updates patch it in place.
  void MaintainSharding(uint32_t num_shards);
  /// Builds the maintained condensation over every label / over `labels`;
  /// subsequent updates repair it per affected label.
  void MaintainCondensation();
  void MaintainCondensation(std::span<const Symbol> labels);

  /// Registers a materialized binary query (src/query/eval_incremental.h)
  /// maintained by this DynamicGraph: every subsequent successful update is
  /// routed to it (delta-frontier repair on inserts, per-label invalidation
  /// on deletes) in registration order, after the maintained structure
  /// snapshots were repaired. The returned pointer is owned by this
  /// DynamicGraph and stays valid for its lifetime.
  StatusOr<MaterializedQuery*> Materialize(const Dfa& query,
                                           std::span<const NodeId> sources,
                                           const EvalOptions& options = {});
  /// Monadic counterpart of Materialize().
  StatusOr<MaterializedMonadic*> MaterializeMonadic(
      const Dfa& query, const EvalOptions& options = {});

  /// Graph::InsertEdge / DeleteEdge plus incremental repair of every
  /// maintained snapshot and registered materialized query. Returns whether
  /// the graph mutated. After repairs, the auto-compaction policy may fold
  /// the delta overlay (see set_auto_compact_threshold) — by construction
  /// never mid-evaluation, since evaluations only run between updates.
  bool InsertEdge(NodeId src, Symbol a, NodeId dst);
  bool DeleteEdge(NodeId src, Symbol a, NodeId dst);

  /// Pending-delta count at which an update triggers Compact() automatically.
  /// The default, 256, sits past the measured overlay-vs-rebuild crossover of
  /// the eval_dynamic bench (the overlay stays within ~1.3× of compacted
  /// evaluation through k = 256 pending deltas, and one compaction amortizes
  /// across the next ~256 updates). 0 disables the policy. Compact()
  /// preserves version() and every label_version(), so materialized results
  /// survive auto-compaction untouched.
  void set_auto_compact_threshold(size_t threshold) {
    auto_compact_threshold_ = threshold;
  }
  size_t auto_compact_threshold() const { return auto_compact_threshold_; }

  /// Graph::Compact(), then folds the maintained partition view's cell
  /// patches by re-partitioning over the fresh CSR (same shard count;
  /// boundaries re-balance to the compacted weights). The condensation is
  /// exact at all times and carries no patch state, so it is left untouched.
  /// Versions are preserved throughout — snapshots stay valid.
  void Compact();

  /// Maintained snapshots; null until the matching Maintain* call.
  const ShardedGraph* sharded() const {
    return sharded_ ? &*sharded_ : nullptr;
  }
  const CondensedGraph* condensed() const {
    return condensed_ ? &*condensed_ : nullptr;
  }

  /// Returns `options` with the cache pointers of every maintained snapshot
  /// filled in (caller-supplied cache pointers win). The evaluation engines
  /// still re-validate by version, so handing these out is always safe.
  EvalOptions WithCaches(EvalOptions options) const;

  const MaintenanceStats& stats() const { return stats_; }

 private:
  void ApplyToSnapshots(Symbol a, NodeId src, NodeId dst, bool inserted);
  void MaybeAutoCompact();

  Graph graph_;
  std::optional<ShardedGraph> sharded_;
  std::optional<CondensedGraph> condensed_;
  /// Registered materialized queries, notified in registration order.
  std::vector<std::unique_ptr<MaterializedView>> materialized_;
  size_t auto_compact_threshold_ = kDefaultAutoCompactThreshold;
  MaintenanceStats stats_;
};

}  // namespace rpqlearn

#endif  // RPQLEARN_GRAPH_DYNAMIC_H_
