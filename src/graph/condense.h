#ifndef RPQLEARN_GRAPH_CONDENSE_H_
#define RPQLEARN_GRAPH_CONDENSE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace rpqlearn {

/// Planner-facing digest of one label's condensation. All counts are over
/// the full node set: every node owns a component id, including nodes with
/// no edge under the label (they form singleton components).
struct CondensationSummary {
  /// Strongly connected components of the single-label subgraph.
  uint32_t num_components = 0;
  /// Member count of the largest component (1 on an acyclic subgraph).
  uint32_t largest_component = 0;
  /// Components with at least two members — the ones whose internal
  /// kleene-star reachability a product BFS would rediscover pair by pair.
  uint32_t nontrivial_components = 0;
  /// Nodes living inside nontrivial components.
  uint32_t collapsed_nodes = 0;
  /// collapsed_nodes / num_nodes ∈ [0, 1): 0 when the subgraph is acyclic,
  /// approaching 1 when one giant component swallows the graph.
  double collapse_ratio = 0.0;
};

/// The SCC condensation of one label's subgraph: a component-id map, a
/// component→member CSR, and the condensation DAG as component-level CSRs in
/// both directions. Component ids are assigned in Tarjan completion order,
/// which is reverse topological — every DAG edge goes from a higher id to a
/// strictly lower one, so `DagOut(c)` targets are all < c and `DagIn(c)`
/// sources are all > c.
class LabelCondensation {
 public:
  uint32_t num_nodes() const {
    return static_cast<uint32_t>(comp_.size());
  }
  uint32_t num_components() const { return summary_.num_components; }
  const CondensationSummary& summary() const { return summary_; }

  /// Component id of node `v` under this label.
  uint32_t ComponentOf(NodeId v) const { return comp_[v]; }

  /// Member nodes of component `c`, ascending.
  std::span<const NodeId> Members(uint32_t c) const {
    return {members_.data() + member_offsets_[c],
            member_offsets_[c + 1] - member_offsets_[c]};
  }

  /// Successor components of `c` in the condensation DAG (there is an edge
  /// u --a--> v with u ∈ c, v ∈ target, target ≠ c), ascending and deduped.
  std::span<const uint32_t> DagOut(uint32_t c) const {
    return {dag_out_.data() + dag_out_offsets_[c],
            dag_out_offsets_[c + 1] - dag_out_offsets_[c]};
  }
  /// Predecessor components of `c` (transpose of DagOut), ascending.
  std::span<const uint32_t> DagIn(uint32_t c) const {
    return {dag_in_.data() + dag_in_offsets_[c],
            dag_in_offsets_[c + 1] - dag_in_offsets_[c]};
  }

  /// Directed component-level edges of the condensation DAG.
  size_t num_dag_edges() const { return dag_out_.size(); }

 private:
  friend class CondensedGraph;

  std::vector<uint32_t> comp_;            // num_nodes
  std::vector<uint32_t> member_offsets_;  // num_components + 1
  std::vector<NodeId> members_;
  std::vector<uint32_t> dag_out_offsets_;  // num_components + 1
  std::vector<uint32_t> dag_out_;
  std::vector<uint32_t> dag_in_offsets_;  // num_components + 1
  std::vector<uint32_t> dag_in_;
  CondensationSummary summary_;
};

/// How one ApplyEdgeUpdate call repaired the condensation (surfaced for
/// tests and maintenance telemetry; callers needing only correctness can
/// ignore it).
enum class CondenseRepair : uint8_t {
  /// The touched label was never condensed: bookkeeping only.
  kUntouchedLabel = 0,
  /// Component structure and DAG are provably unchanged (intra-component
  /// or self-loop update): O(1) beyond bookkeeping.
  kNoStructuralChange = 1,
  /// Components unchanged, condensation-DAG CSRs rebuilt from the existing
  /// component map (cross-component update that cannot merge or split an
  /// SCC, with the reverse-topological id invariant preserved).
  kDagRebuilt = 2,
  /// The delta touched a (potentially) nontrivial component: the label fell
  /// back to a fresh per-label Tarjan pass. Other labels stay untouched.
  kLabelRetarjaned = 3,
};

/// Per-label SCC condensations of one Graph, built by an iterative
/// (explicit-stack) Tarjan pass over the label-grouped CSR.
/// Deterministic: the same graph always produces the same component ids and
/// CSR layouts. The structure is evaluation-side read-only — the query
/// planner consults the summaries and the kleene-star rounds expand
/// frontiers component-at-a-time through the DAG CSRs (see
/// docs/ARCHITECTURE.md, "SCC condensation"). Under edge updates the
/// condensation is maintained incrementally per label via ApplyEdgeUpdate;
/// labels the update does not carry keep their frozen LabelCondensation
/// untouched.
class CondensedGraph {
 public:
  /// An empty condensation (0 nodes, no labels); assign a built one over it.
  CondensedGraph() = default;

  /// Condenses every label of `graph`.
  static CondensedGraph Build(const Graph& graph);

  /// Condenses only `labels` (each must be < graph.num_symbols(); duplicates
  /// are allowed and collapsed). The planner uses this to condense exactly
  /// the labels that appear in kleene-star self-loops of the query.
  static CondensedGraph Build(const Graph& graph,
                              std::span<const Symbol> labels);

  uint32_t num_nodes() const { return num_nodes_; }
  /// Edge count of the graph this condensation was built from; cache
  /// consumers compare it (with num_nodes) to reject stale caches.
  size_t num_graph_edges() const { return num_graph_edges_; }
  /// Graph::version() at build time, advanced by every ApplyEdgeUpdate.
  /// The evaluation cache match requires equality with the live graph's
  /// version, so a condensation that missed an update (even one returning
  /// the edge count to a previously seen value) can never be read stale.
  uint64_t graph_version() const { return graph_version_; }
  uint32_t num_symbols() const {
    return static_cast<uint32_t>(built_.size());
  }

  /// Maintains the condensation across one successful
  /// Graph::InsertEdge/DeleteEdge of `src --a--> dst`, called *after* the
  /// graph mutated (one call per successful update, in order). Repairs are
  /// keyed by the affected label: intra-component and self-loop updates are
  /// O(1) no-ops, a cross-component update rebuilds only the label's DAG
  /// CSRs on the frozen component map, and only an update that may merge or
  /// split an SCC re-runs Tarjan for that single label. Every other label's
  /// LabelCondensation (including its storage) is left untouched.
  CondenseRepair ApplyEdgeUpdate(const Graph& graph, Symbol a, NodeId src,
                                 NodeId dst, bool inserted);

  /// True iff `Label(a)` was built (Build-all builds every label; the
  /// subset overload only the requested ones).
  bool HasLabel(Symbol a) const {
    return a < built_.size() && built_[a] != 0;
  }
  const LabelCondensation& Label(Symbol a) const { return labels_[a]; }

 private:
  static LabelCondensation CondenseLabel(const Graph& graph, Symbol a);
  static void BuildDagCsrs(const Graph& graph, Symbol a,
                           LabelCondensation* out);

  uint32_t num_nodes_ = 0;
  size_t num_graph_edges_ = 0;
  uint64_t graph_version_ = 0;
  std::vector<uint8_t> built_;            // per symbol
  std::vector<LabelCondensation> labels_;  // per symbol; empty when !built_
};

}  // namespace rpqlearn

#endif  // RPQLEARN_GRAPH_CONDENSE_H_
