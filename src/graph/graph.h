#ifndef RPQLEARN_GRAPH_GRAPH_H_
#define RPQLEARN_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "automata/alphabet.h"
#include "automata/word.h"

namespace rpqlearn {

/// Dense node id of a graph database.
using NodeId = uint32_t;

/// One directed labeled edge (νo, a, νe) as stored in adjacency lists:
/// `node` is the other endpoint (target for out-edges, source for in-edges).
struct LabeledEdge {
  Symbol label;
  NodeId node;

  friend bool operator==(const LabeledEdge& a, const LabeledEdge& b) {
    return a.label == b.label && a.node == b.node;
  }
  friend bool operator<(const LabeledEdge& a, const LabeledEdge& b) {
    return a.label != b.label ? a.label < b.label : a.node < b.node;
  }
};

/// A graph database: a finite, directed, edge-labeled graph (Sec. 2 of the
/// paper), stored in CSR form with both forward and reverse adjacency, each
/// sorted by (label, endpoint). Build via GraphBuilder.
///
/// The CSR core is immutable, but the graph is *dynamic* through a
/// delta-edge overlay: InsertEdge/DeleteEdge record pending updates in
/// per-label buffers and patch the affected (node, label) adjacency cells
/// copy-on-write, so every accessor — both traversal directions, the
/// label-interleaved edge spans, degrees, path checks — serves the live
/// edge set while untouched cells keep reading the frozen base arrays.
/// Compact() folds the deltas into a fresh CSR. Mutations must be
/// externally synchronized against readers (the evaluation engines only
/// read); concurrent reads are safe. See docs/ARCHITECTURE.md,
/// "Dynamic graphs".
class Graph {
 public:
  /// An empty graph (0 nodes); assign a built graph over it.
  Graph() = default;

  uint32_t num_nodes() const {
    return out_offsets_.empty()
               ? 0
               : static_cast<uint32_t>(out_offsets_.size()) - 1;
  }
  size_t num_edges() const { return num_edges_; }
  uint32_t num_symbols() const { return alphabet_.size(); }
  const Alphabet& alphabet() const { return alphabet_; }

  /// Outgoing edges of `v`, sorted by (label, target).
  std::span<const LabeledEdge> OutEdges(NodeId v) const {
    if (has_deltas_) [[unlikely]] {
      if (const auto* patched = FindPatched(patched_out_edges_, v)) {
        return {patched->data(), patched->size()};
      }
    }
    return {out_edges_.data() + out_offsets_[v],
            out_offsets_[v + 1] - out_offsets_[v]};
  }
  /// Incoming edges of `v`, sorted by (label, source).
  std::span<const LabeledEdge> InEdges(NodeId v) const {
    if (has_deltas_) [[unlikely]] {
      if (const auto* patched = FindPatched(patched_in_edges_, v)) {
        return {patched->data(), patched->size()};
      }
    }
    return {in_edges_.data() + in_offsets_[v],
            in_offsets_[v + 1] - in_offsets_[v]};
  }

  /// Outgoing edges of `v` labeled `a` (a contiguous subrange of OutEdges).
  std::span<const LabeledEdge> OutEdgesWithLabel(NodeId v, Symbol a) const;

  /// Targets of `v --a-->` edges, ascending. Backed by a label-grouped CSR
  /// index (`num_nodes × num_symbols` offsets into a flat target array), so
  /// the evaluation inner loops iterate exactly the neighbors under one label
  /// with no per-edge label filtering and no binary search.
  std::span<const NodeId> OutNeighbors(NodeId v, Symbol a) const {
    const size_t cell = static_cast<size_t>(v) * num_symbols() + a;
    if (has_deltas_) [[unlikely]] {
      if (const auto* patched = FindPatched(patched_out_cells_, cell)) {
        return {patched->data(), patched->size()};
      }
    }
    return {out_targets_.data() + out_label_offsets_[cell],
            out_label_offsets_[cell + 1] - out_label_offsets_[cell]};
  }
  /// Sources of `--a--> v` edges, ascending.
  std::span<const NodeId> InNeighbors(NodeId v, Symbol a) const {
    const size_t cell = static_cast<size_t>(v) * num_symbols() + a;
    if (has_deltas_) [[unlikely]] {
      if (const auto* patched = FindPatched(patched_in_cells_, cell)) {
        return {patched->data(), patched->size()};
      }
    }
    return {in_sources_.data() + in_label_offsets_[cell],
            in_label_offsets_[cell + 1] - in_label_offsets_[cell]};
  }

  /// Display name of node `v` ("v<id>" unless set at build time).
  const std::string& NodeName(NodeId v) const { return names_[v]; }

  /// Looks up a node by display name; returns num_nodes() if absent.
  /// Linear scan — intended for fixtures and examples, not hot paths.
  NodeId FindNodeByName(std::string_view name) const;

  /// True iff some path starting at `from` spells `word` (i.e.
  /// `word ∈ paths_G(from)`), by subset simulation. Exact but O(|w|·|V|·deg);
  /// used by tests and small examples.
  bool HasPathFrom(NodeId from, const Word& word) const;

  /// True iff some path from `from` to `to` spells `word` (binary
  /// semantics, `word ∈ paths2_G(from, to)`).
  bool HasPathBetween(NodeId from, NodeId to, const Word& word) const;

  /// Out-degree of `v`.
  uint32_t OutDegree(NodeId v) const {
    if (has_deltas_) [[unlikely]] {
      return static_cast<uint32_t>(OutEdges(v).size());
    }
    return static_cast<uint32_t>(out_offsets_[v + 1] - out_offsets_[v]);
  }

  // --- delta-edge overlay ---------------------------------------------

  /// True iff the edge `src --label--> dst` is in the live edge set (base
  /// CSR plus pending deltas). O(log deg).
  bool HasEdge(NodeId src, Symbol label, NodeId dst) const;

  /// Adds the edge `src --label--> dst` to the overlay. Returns false (a
  /// no-op, no version bump) when the edge is already live — inserts are
  /// idempotent, matching GraphBuilder's duplicate collapsing. Endpoints
  /// must be existing nodes and `label` an interned symbol: the overlay
  /// mutates edges, never the node set or the alphabet.
  bool InsertEdge(NodeId src, Symbol label, NodeId dst);

  /// Removes the edge `src --label--> dst` from the overlay — equally a
  /// base edge (recorded in the label's delete buffer) or a pending delta
  /// edge (its insert is cancelled). Returns false (a no-op) when the edge
  /// is not live. When a mutation sequence returns the live set to the base
  /// set exactly, all delta state is dropped and reads return to the
  /// unpatched fast path.
  bool DeleteEdge(NodeId src, Symbol label, NodeId dst);

  /// Folds every pending delta into a fresh CSR (base arrays rebuilt,
  /// buffers and patches cleared). Semantically a no-op — the live edge set
  /// is unchanged — so version() and every label_version() are preserved:
  /// derived-structure caches keyed on them stay valid across compaction.
  void Compact();

  /// True iff any delta is pending (reads take the patched slow path).
  bool has_deltas() const { return has_deltas_; }

  /// Pending overlay entries (buffered inserts plus buffered deletes,
  /// summed over every label). 0 after Compact().
  size_t num_pending_deltas() const;

  /// Mutation counter: bumped by every successful InsertEdge/DeleteEdge,
  /// preserved by Compact(). Derived structures (ShardedGraph,
  /// CondensedGraph) record it at build/update time and the evaluation
  /// engines reject caches whose recorded version mismatches — a stale
  /// cache can therefore never serve a mutated graph.
  uint64_t version() const { return version_; }

  /// Per-label mutation counter: bumped only by updates carrying `a`.
  /// Cache layers key invalidation on it so an update touching label `a`
  /// leaves snapshots of other labels frozen.
  uint64_t label_version(Symbol a) const { return label_versions_[a]; }

 private:
  friend class GraphBuilder;

  template <typename Map>
  static const typename Map::mapped_type* FindPatched(
      const Map& map, typename Map::key_type key) {
    const auto it = map.find(key);
    return it == map.end() ? nullptr : &it->second;
  }

  /// Per-label overlay buffers: pending (src, dst) pairs, each kept sorted.
  /// An edge is live iff it is (in the base CSR and not in deletes) or in
  /// inserts; the two buffers are disjoint and inserts never name base
  /// edges.
  struct LabelDelta {
    std::vector<std::pair<NodeId, NodeId>> inserts;
    std::vector<std::pair<NodeId, NodeId>> deletes;
  };

  bool HasBaseEdge(NodeId src, Symbol label, NodeId dst) const;
  void PatchAdjacency(NodeId src, Symbol label, NodeId dst, bool insert);
  void DropDeltaStateIfClean();

  Alphabet alphabet_;
  std::vector<std::string> names_;
  std::vector<size_t> out_offsets_;  // num_nodes + 1
  std::vector<LabeledEdge> out_edges_;
  std::vector<size_t> in_offsets_;
  std::vector<LabeledEdge> in_edges_;
  // Label-grouped CSR: offsets are num_nodes × num_symbols + 1; cell (v, a)
  // spans the neighbors of v under label a in the flat endpoint arrays.
  std::vector<uint32_t> out_label_offsets_;
  std::vector<NodeId> out_targets_;
  std::vector<uint32_t> in_label_offsets_;
  std::vector<NodeId> in_sources_;
  // Delta-edge overlay. The base arrays above stay frozen while deltas are
  // pending; a (node, label) cell or a node's interleaved edge list with at
  // least one delta is materialized patched (base content ± deltas) in the
  // maps below and fully supersedes its base run. num_edges_ is the live
  // count (base ± net deltas).
  bool has_deltas_ = false;
  size_t num_edges_ = 0;
  uint64_t version_ = 0;
  std::vector<uint64_t> label_versions_;  // per symbol
  std::vector<LabelDelta> label_deltas_;  // per symbol
  std::unordered_map<uint64_t, std::vector<NodeId>> patched_out_cells_;
  std::unordered_map<uint64_t, std::vector<NodeId>> patched_in_cells_;
  std::unordered_map<NodeId, std::vector<LabeledEdge>> patched_out_edges_;
  std::unordered_map<NodeId, std::vector<LabeledEdge>> patched_in_edges_;
};

/// Accumulates nodes and edges, then produces an immutable Graph.
class GraphBuilder {
 public:
  GraphBuilder() = default;

  /// Adds one node; `name` defaults to "v<id>".
  NodeId AddNode(std::string_view name = "");

  /// Adds `count` anonymous nodes; returns the id of the first.
  NodeId AddNodes(uint32_t count);

  /// Interns an edge-label string.
  Symbol InternLabel(std::string_view label) {
    return alphabet_.Intern(label);
  }

  /// Pre-interns labels so symbol ids are assigned in a chosen order even if
  /// edges arrive in a different order.
  void InternLabels(const std::vector<std::string>& labels);

  /// Adds the edge `src --label--> dst`; both nodes must already exist.
  void AddEdge(NodeId src, Symbol label, NodeId dst);

  /// Convenience overload interning the label string.
  void AddEdge(NodeId src, std::string_view label, NodeId dst) {
    AddEdge(src, InternLabel(label), dst);
  }

  uint32_t num_nodes() const { return static_cast<uint32_t>(names_.size()); }

  /// Builds the CSR graph. Duplicate edges are collapsed. The builder is
  /// left empty afterwards.
  Graph Build();

 private:
  struct RawEdge {
    NodeId src;
    Symbol label;
    NodeId dst;
  };
  Alphabet alphabet_;
  std::vector<std::string> names_;
  std::vector<RawEdge> edges_;
};

}  // namespace rpqlearn

#endif  // RPQLEARN_GRAPH_GRAPH_H_
