#ifndef RPQLEARN_GRAPH_GRAPH_H_
#define RPQLEARN_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "automata/alphabet.h"
#include "automata/word.h"

namespace rpqlearn {

/// Dense node id of a graph database.
using NodeId = uint32_t;

/// One directed labeled edge (νo, a, νe) as stored in adjacency lists:
/// `node` is the other endpoint (target for out-edges, source for in-edges).
struct LabeledEdge {
  Symbol label;
  NodeId node;

  friend bool operator==(const LabeledEdge& a, const LabeledEdge& b) {
    return a.label == b.label && a.node == b.node;
  }
  friend bool operator<(const LabeledEdge& a, const LabeledEdge& b) {
    return a.label != b.label ? a.label < b.label : a.node < b.node;
  }
};

/// An immutable graph database: a finite, directed, edge-labeled graph
/// (Sec. 2 of the paper), stored in CSR form with both forward and reverse
/// adjacency, each sorted by (label, endpoint). Build via GraphBuilder.
class Graph {
 public:
  /// An empty graph (0 nodes); assign a built graph over it.
  Graph() = default;

  uint32_t num_nodes() const {
    return out_offsets_.empty()
               ? 0
               : static_cast<uint32_t>(out_offsets_.size()) - 1;
  }
  size_t num_edges() const { return out_edges_.size(); }
  uint32_t num_symbols() const { return alphabet_.size(); }
  const Alphabet& alphabet() const { return alphabet_; }

  /// Outgoing edges of `v`, sorted by (label, target).
  std::span<const LabeledEdge> OutEdges(NodeId v) const {
    return {out_edges_.data() + out_offsets_[v],
            out_offsets_[v + 1] - out_offsets_[v]};
  }
  /// Incoming edges of `v`, sorted by (label, source).
  std::span<const LabeledEdge> InEdges(NodeId v) const {
    return {in_edges_.data() + in_offsets_[v],
            in_offsets_[v + 1] - in_offsets_[v]};
  }

  /// Outgoing edges of `v` labeled `a` (a contiguous subrange of OutEdges).
  std::span<const LabeledEdge> OutEdgesWithLabel(NodeId v, Symbol a) const;

  /// Targets of `v --a-->` edges, ascending. Backed by a label-grouped CSR
  /// index (`num_nodes × num_symbols` offsets into a flat target array), so
  /// the evaluation inner loops iterate exactly the neighbors under one label
  /// with no per-edge label filtering and no binary search.
  std::span<const NodeId> OutNeighbors(NodeId v, Symbol a) const {
    const size_t cell = static_cast<size_t>(v) * num_symbols() + a;
    return {out_targets_.data() + out_label_offsets_[cell],
            out_label_offsets_[cell + 1] - out_label_offsets_[cell]};
  }
  /// Sources of `--a--> v` edges, ascending.
  std::span<const NodeId> InNeighbors(NodeId v, Symbol a) const {
    const size_t cell = static_cast<size_t>(v) * num_symbols() + a;
    return {in_sources_.data() + in_label_offsets_[cell],
            in_label_offsets_[cell + 1] - in_label_offsets_[cell]};
  }

  /// Display name of node `v` ("v<id>" unless set at build time).
  const std::string& NodeName(NodeId v) const { return names_[v]; }

  /// Looks up a node by display name; returns num_nodes() if absent.
  /// Linear scan — intended for fixtures and examples, not hot paths.
  NodeId FindNodeByName(std::string_view name) const;

  /// True iff some path starting at `from` spells `word` (i.e.
  /// `word ∈ paths_G(from)`), by subset simulation. Exact but O(|w|·|V|·deg);
  /// used by tests and small examples.
  bool HasPathFrom(NodeId from, const Word& word) const;

  /// True iff some path from `from` to `to` spells `word` (binary
  /// semantics, `word ∈ paths2_G(from, to)`).
  bool HasPathBetween(NodeId from, NodeId to, const Word& word) const;

  /// Out-degree of `v`.
  uint32_t OutDegree(NodeId v) const {
    return static_cast<uint32_t>(out_offsets_[v + 1] - out_offsets_[v]);
  }

 private:
  friend class GraphBuilder;

  Alphabet alphabet_;
  std::vector<std::string> names_;
  std::vector<size_t> out_offsets_;  // num_nodes + 1
  std::vector<LabeledEdge> out_edges_;
  std::vector<size_t> in_offsets_;
  std::vector<LabeledEdge> in_edges_;
  // Label-grouped CSR: offsets are num_nodes × num_symbols + 1; cell (v, a)
  // spans the neighbors of v under label a in the flat endpoint arrays.
  std::vector<uint32_t> out_label_offsets_;
  std::vector<NodeId> out_targets_;
  std::vector<uint32_t> in_label_offsets_;
  std::vector<NodeId> in_sources_;
};

/// Accumulates nodes and edges, then produces an immutable Graph.
class GraphBuilder {
 public:
  GraphBuilder() = default;

  /// Adds one node; `name` defaults to "v<id>".
  NodeId AddNode(std::string_view name = "");

  /// Adds `count` anonymous nodes; returns the id of the first.
  NodeId AddNodes(uint32_t count);

  /// Interns an edge-label string.
  Symbol InternLabel(std::string_view label) {
    return alphabet_.Intern(label);
  }

  /// Pre-interns labels so symbol ids are assigned in a chosen order even if
  /// edges arrive in a different order.
  void InternLabels(const std::vector<std::string>& labels);

  /// Adds the edge `src --label--> dst`; both nodes must already exist.
  void AddEdge(NodeId src, Symbol label, NodeId dst);

  /// Convenience overload interning the label string.
  void AddEdge(NodeId src, std::string_view label, NodeId dst) {
    AddEdge(src, InternLabel(label), dst);
  }

  uint32_t num_nodes() const { return static_cast<uint32_t>(names_.size()); }

  /// Builds the CSR graph. Duplicate edges are collapsed. The builder is
  /// left empty afterwards.
  Graph Build();

 private:
  struct RawEdge {
    NodeId src;
    Symbol label;
    NodeId dst;
  };
  Alphabet alphabet_;
  std::vector<std::string> names_;
  std::vector<RawEdge> edges_;
};

}  // namespace rpqlearn

#endif  // RPQLEARN_GRAPH_GRAPH_H_
