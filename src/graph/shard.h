#ifndef RPQLEARN_GRAPH_SHARD_H_
#define RPQLEARN_GRAPH_SHARD_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"

namespace rpqlearn {

/// One contiguous node-range shard of a ShardedGraph: the global nodes
/// [node_begin(), node_end()), remapped to local ids 0 .. num_local_nodes()-1
/// (local = global - node_begin()). Adjacency is split per (node, label)
/// cell into an *internal* label-grouped CSR — edges whose other endpoint
/// also lies in this shard, endpoints stored as local ids — and a *boundary*
/// CSR — edges whose other endpoint lies in another shard, endpoints stored
/// as global ids. Internal and boundary runs are each ascending and together
/// hold exactly the cell's neighbors in the monolithic Graph.
///
/// Like the Graph it mirrors, a shard is dynamic through copy-on-write cell
/// patches: ShardedGraph::ApplyEdgeUpdate materializes only the touched
/// (node, label) cells into patch maps, leaving the base CSR arrays frozen,
/// so untouched cells keep the unpatched fast path.
class GraphShard {
 public:
  NodeId node_begin() const { return node_begin_; }
  NodeId node_end() const { return node_end_; }
  uint32_t num_local_nodes() const { return node_end_ - node_begin_; }
  uint32_t num_symbols() const { return num_symbols_; }

  /// Local targets of internal `local_v --a-->` edges, ascending.
  std::span<const NodeId> OutNeighborsLocal(NodeId local_v, Symbol a) const {
    return Cell(out_internal_offsets_, out_internal_, patched_out_internal_,
                local_v, a);
  }
  /// Local sources of internal `--a--> local_v` edges, ascending.
  std::span<const NodeId> InNeighborsLocal(NodeId local_v, Symbol a) const {
    return Cell(in_internal_offsets_, in_internal_, patched_in_internal_,
                local_v, a);
  }
  /// Global targets of `local_v --a-->` edges leaving the shard, ascending.
  std::span<const NodeId> OutBoundary(NodeId local_v, Symbol a) const {
    return Cell(out_boundary_offsets_, out_boundary_, patched_out_boundary_,
                local_v, a);
  }
  /// Global sources of `--a--> local_v` edges entering the shard, ascending.
  std::span<const NodeId> InBoundary(NodeId local_v, Symbol a) const {
    return Cell(in_boundary_offsets_, in_boundary_, patched_in_boundary_,
                local_v, a);
  }

  /// True iff `local_v` has at least one out-edge leaving the shard (under
  /// any label). The shard-aware evaluation uses this to track only the
  /// product cells whose lane gains must be pushed to other shards.
  bool HasOutBoundary(NodeId local_v) const {
    if (patched_) [[unlikely]] {
      return out_boundary_degrees_[local_v] > 0;
    }
    const size_t row = static_cast<size_t>(local_v) * num_symbols_;
    return out_boundary_offsets_[row + num_symbols_] >
           out_boundary_offsets_[row];
  }
  /// True iff some in-edge of `local_v` originates in another shard.
  bool HasInBoundary(NodeId local_v) const {
    if (patched_) [[unlikely]] {
      return in_boundary_degrees_[local_v] > 0;
    }
    const size_t row = static_cast<size_t>(local_v) * num_symbols_;
    return in_boundary_offsets_[row + num_symbols_] > in_boundary_offsets_[row];
  }

  /// Directed edges whose source lies here and target elsewhere.
  size_t num_out_boundary_edges() const { return num_out_boundary_edges_; }
  /// Directed edges whose target lies here and source elsewhere.
  size_t num_in_boundary_edges() const { return num_in_boundary_edges_; }
  /// Directed edges with both endpoints in this shard.
  size_t num_internal_edges() const { return num_internal_edges_; }

  /// True iff any cell patch is live (ApplyEdgeUpdate has touched this
  /// shard since Partition).
  bool patched() const { return patched_; }

 private:
  friend class ShardedGraph;

  std::span<const NodeId> Cell(
      const std::vector<uint32_t>& offsets,
      const std::vector<NodeId>& endpoints,
      const std::unordered_map<uint64_t, std::vector<NodeId>>& patches,
      NodeId local_v, Symbol a) const {
    const size_t cell = static_cast<size_t>(local_v) * num_symbols_ + a;
    if (patched_) [[unlikely]] {
      const auto it = patches.find(cell);
      if (it != patches.end()) {
        return {it->second.data(), it->second.size()};
      }
    }
    return {endpoints.data() + offsets[cell], offsets[cell + 1] - offsets[cell]};
  }

  /// Materializes cell (local_v, a) of the chosen CSR into `patches` (base
  /// run copied on first touch) and sorted-inserts or erases `endpoint`.
  void PatchCell(const std::vector<uint32_t>& offsets,
                 const std::vector<NodeId>& endpoints,
                 std::unordered_map<uint64_t, std::vector<NodeId>>* patches,
                 NodeId local_v, Symbol a, NodeId endpoint, bool insert);

  /// Flips the shard into patched mode: builds the per-node boundary-degree
  /// tallies that replace the offset-difference reads of HasOutBoundary /
  /// HasInBoundary (offsets describe only the frozen base CSR).
  void EnterPatchedMode();

  NodeId node_begin_ = 0;
  NodeId node_end_ = 0;
  uint32_t num_symbols_ = 0;
  // Label-grouped CSRs over local (node, label) cells; offsets are
  // num_local_nodes × num_symbols + 1 each.
  std::vector<uint32_t> out_internal_offsets_;
  std::vector<NodeId> out_internal_;  // local targets
  std::vector<uint32_t> in_internal_offsets_;
  std::vector<NodeId> in_internal_;  // local sources
  std::vector<uint32_t> out_boundary_offsets_;
  std::vector<NodeId> out_boundary_;  // global targets in other shards
  std::vector<uint32_t> in_boundary_offsets_;
  std::vector<NodeId> in_boundary_;  // global sources in other shards
  // Copy-on-write cell patches (see class doc). A patched cell fully
  // supersedes its base run; edge counters track the live (patched) totals.
  bool patched_ = false;
  size_t num_internal_edges_ = 0;
  size_t num_out_boundary_edges_ = 0;
  size_t num_in_boundary_edges_ = 0;
  std::unordered_map<uint64_t, std::vector<NodeId>> patched_out_internal_;
  std::unordered_map<uint64_t, std::vector<NodeId>> patched_in_internal_;
  std::unordered_map<uint64_t, std::vector<NodeId>> patched_out_boundary_;
  std::unordered_map<uint64_t, std::vector<NodeId>> patched_in_boundary_;
  std::vector<uint32_t> out_boundary_degrees_;  // per local node; patched mode
  std::vector<uint32_t> in_boundary_degrees_;
};

/// A partition view of one immutable Graph: K contiguous node-range shards,
/// each with shard-local internal CSRs and a boundary-edge index. The view
/// borrows nothing from the Graph (all arrays are copied into shard-local
/// layouts), so a shard is self-contained — the layout a distributed
/// deployment would ship per machine — while `ShardOf` maps any global node
/// to its owner.
///
/// Partitioning is deterministic: shard boundaries are chosen by splitting
/// the prefix sums of per-node weights (1 + out-degree + in-degree) into K
/// even spans, so shards balance adjacency work, not just node counts.
/// Requesting more shards than the weight can fill produces empty trailing
/// ranges — legal, and exercised by the degenerate-shard tests. The shard
/// count never changes evaluation results (see docs/ARCHITECTURE.md,
/// "Sharded evaluation").
///
/// Under edge updates the view is maintained incrementally by
/// ApplyEdgeUpdate: shard boundaries stay fixed (any contiguous partition is
/// valid — results are partition-independent), a same-shard update patches
/// that shard's internal cells, and a cross-shard update patches the source
/// shard's out-boundary and the target shard's in-boundary cells.
class ShardedGraph {
 public:
  /// Builds the K-shard view of `graph`. `num_shards` must be ≥ 1.
  static ShardedGraph Partition(const Graph& graph, uint32_t num_shards);

  uint32_t num_shards() const {
    return static_cast<uint32_t>(shards_.size());
  }
  uint32_t num_nodes() const { return num_nodes_; }
  /// Edge count of the graph this view partitions; cache consumers compare
  /// it (with num_nodes) to reject stale caches.
  size_t num_graph_edges() const { return num_graph_edges_; }
  /// Graph::version() at build time, advanced by every ApplyEdgeUpdate; the
  /// evaluation cache match requires equality with the live graph's version
  /// (see CondensedGraph::graph_version for the stale-cache argument).
  uint64_t graph_version() const { return graph_version_; }
  const GraphShard& shard(uint32_t s) const { return shards_[s]; }

  /// Maintains the partition view across one successful
  /// Graph::InsertEdge/DeleteEdge of `src --a--> dst`, called *after* the
  /// graph mutated (one call per successful update, in order). Only the
  /// owning shard(s) of the endpoints are touched, and within them only the
  /// affected (node, label) cells.
  void ApplyEdgeUpdate(const Graph& graph, Symbol a, NodeId src, NodeId dst,
                       bool inserted);

  /// The shard owning global node `v`.
  uint32_t ShardOf(NodeId v) const;

  /// Shard boundaries: num_shards + 1 ascending values with
  /// boundaries()[s] = shard(s).node_begin() and boundaries().back() =
  /// num_nodes().
  const std::vector<NodeId>& boundaries() const { return boundaries_; }

  /// Directed edges whose endpoints lie in different shards (each such edge
  /// counted once; it appears in its source shard's out-boundary and its
  /// target shard's in-boundary).
  size_t num_boundary_edges() const { return num_boundary_edges_; }

 private:
  ShardedGraph() = default;

  uint32_t num_nodes_ = 0;
  size_t num_graph_edges_ = 0;
  size_t num_boundary_edges_ = 0;
  uint64_t graph_version_ = 0;
  std::vector<NodeId> boundaries_;
  std::vector<GraphShard> shards_;
};

}  // namespace rpqlearn

#endif  // RPQLEARN_GRAPH_SHARD_H_
