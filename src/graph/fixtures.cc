#include "graph/fixtures.h"

namespace rpqlearn {

Graph Figure1Geographic() {
  GraphBuilder b;
  b.InternLabels({"tram", "bus", "cinema", "restaurant"});
  NodeId n1 = b.AddNode("N1");
  NodeId n2 = b.AddNode("N2");
  NodeId n3 = b.AddNode("N3");
  NodeId n4 = b.AddNode("N4");
  NodeId n5 = b.AddNode("N5");
  NodeId n6 = b.AddNode("N6");
  NodeId c1 = b.AddNode("C1");
  NodeId c2 = b.AddNode("C2");
  NodeId r1 = b.AddNode("R1");
  NodeId r2 = b.AddNode("R2");
  b.AddEdge(n1, "tram", n4);
  b.AddEdge(n2, "bus", n1);
  b.AddEdge(n2, "bus", n3);
  b.AddEdge(n4, "cinema", c1);
  b.AddEdge(n4, "tram", n5);
  b.AddEdge(n5, "tram", n3);
  b.AddEdge(n5, "restaurant", r1);
  b.AddEdge(n3, "restaurant", r2);
  b.AddEdge(n6, "cinema", c2);
  b.AddEdge(n6, "bus", n3);
  return b.Build();
}

Graph Figure3G0() {
  GraphBuilder b;
  b.InternLabels({"a", "b", "c"});
  NodeId v1 = b.AddNode("v1");
  NodeId v2 = b.AddNode("v2");
  NodeId v3 = b.AddNode("v3");
  NodeId v4 = b.AddNode("v4");
  NodeId v5 = b.AddNode("v5");
  NodeId v6 = b.AddNode("v6");
  NodeId v7 = b.AddNode("v7");
  b.AddEdge(v1, "a", v2);
  b.AddEdge(v2, "a", v6);
  b.AddEdge(v2, "b", v3);
  b.AddEdge(v3, "a", v2);
  b.AddEdge(v3, "a", v4);
  b.AddEdge(v3, "c", v4);
  // v4 is a sink.
  b.AddEdge(v5, "a", v4);
  b.AddEdge(v5, "b", v4);
  b.AddEdge(v6, "a", v1);
  b.AddEdge(v6, "a", v6);
  b.AddEdge(v6, "b", v7);
  b.AddEdge(v7, "a", v6);
  return b.Build();
}

FixtureSample Figure3Sample() {
  return FixtureSample{/*positive=*/{0, 2}, /*negative=*/{1, 6}};
}

Graph Figure5Inconsistent() {
  GraphBuilder b;
  b.InternLabels({"a", "b"});
  NodeId pos = b.AddNode("pos");
  NodeId neg1 = b.AddNode("neg1");
  NodeId neg2 = b.AddNode("neg2");
  // The positive node generates (a+b)*, all of which both negatives cover.
  b.AddEdge(pos, "a", pos);
  b.AddEdge(pos, "b", pos);
  b.AddEdge(neg1, "a", neg1);
  b.AddEdge(neg1, "b", neg1);
  b.AddEdge(neg2, "a", neg2);
  b.AddEdge(neg2, "b", neg2);
  return b.Build();
}

FixtureSample Figure5Sample() {
  return FixtureSample{/*positive=*/{0}, /*negative=*/{1, 2}};
}

Graph Figure8EquivalentOnly() {
  GraphBuilder b;
  b.InternLabels({"a", "b", "c"});
  NodeId m1 = b.AddNode("m1");
  NodeId m2 = b.AddNode("m2");
  NodeId m3 = b.AddNode("m3");
  NodeId m4 = b.AddNode("m4");
  b.AddEdge(m1, "b", m2);
  b.AddEdge(m2, "a", m3);
  b.AddEdge(m3, "a", m4);
  b.AddEdge(m3, "b", m3);
  b.AddEdge(m3, "c", m4);
  return b.Build();
}

FixtureSample Figure8Sample() {
  return FixtureSample{/*positive=*/{1, 2}, /*negative=*/{0, 3}};
}

Graph Figure10Certain() {
  GraphBuilder b;
  b.InternLabels({"a", "b"});
  NodeId pos = b.AddNode("pos");
  NodeId neg = b.AddNode("neg");
  NodeId unlabeled = b.AddNode("unlabeled");
  NodeId sink = b.AddNode("sink");
  b.AddEdge(pos, "b", sink);
  b.AddEdge(neg, "a", sink);
  b.AddEdge(unlabeled, "a", sink);
  b.AddEdge(unlabeled, "b", sink);
  return b.Build();
}

FixtureSample Figure10Sample() {
  return FixtureSample{/*positive=*/{0}, /*negative=*/{1}};
}

}  // namespace rpqlearn
