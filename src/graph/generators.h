#ifndef RPQLEARN_GRAPH_GENERATORS_H_
#define RPQLEARN_GRAPH_GENERATORS_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/random.h"

namespace rpqlearn {

/// Parameters for the scale-free generator used for the paper's synthetic
/// datasets (Sec. 5.1: "scale-free graphs with a Zipfian edge label
/// distribution", sizes 10k/20k/30k nodes with 3× edges).
struct ScaleFreeOptions {
  uint32_t num_nodes = 10000;
  /// Total directed edges; the paper uses 3 * num_nodes.
  size_t num_edges = 30000;
  uint32_t num_labels = 40;
  /// Zipf skew for the label distribution.
  double zipf_exponent = 1.0;
  /// Probability that an edge endpoint is chosen by preferential attachment
  /// rather than uniformly (controls how heavy the degree tail is).
  double preferential_probability = 0.7;
  uint64_t seed = 1;
  /// Label names; generated as "l0..l{n-1}" when empty.
  std::vector<std::string> label_names;
};

/// Generates a directed scale-free multigraph by preferential attachment
/// with Zipfian labels. Deterministic given the seed.
Graph GenerateScaleFree(const ScaleFreeOptions& options);

/// Parameters for a uniform random graph (baseline/testing).
struct ErdosRenyiOptions {
  uint32_t num_nodes = 1000;
  size_t num_edges = 3000;
  uint32_t num_labels = 4;
  uint64_t seed = 1;
};

/// Generates a uniform random edge-labeled digraph.
Graph GenerateErdosRenyi(const ErdosRenyiOptions& options);

}  // namespace rpqlearn

#endif  // RPQLEARN_GRAPH_GENERATORS_H_
