#ifndef RPQLEARN_GRAPH_STATS_H_
#define RPQLEARN_GRAPH_STATS_H_

#include <string>
#include <vector>

#include "graph/graph.h"

namespace rpqlearn {

/// Degree and label statistics, used by the workload calibration benches and
/// to sanity-check generated graphs against the paper's dataset shapes.
struct GraphStats {
  uint32_t num_nodes = 0;
  size_t num_edges = 0;
  uint32_t num_labels = 0;
  double avg_out_degree = 0.0;
  uint32_t max_out_degree = 0;
  uint32_t max_in_degree = 0;
  /// Edge count per label, index = Symbol.
  std::vector<size_t> label_histogram;
  /// Fraction of nodes with no outgoing edges.
  double sink_fraction = 0.0;
};

/// Computes stats in one pass over the adjacency.
GraphStats ComputeGraphStats(const Graph& graph);

/// Multi-line human-readable rendering.
std::string StatsToString(const GraphStats& stats, const Alphabet& alphabet);

}  // namespace rpqlearn

#endif  // RPQLEARN_GRAPH_STATS_H_
