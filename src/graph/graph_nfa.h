#ifndef RPQLEARN_GRAPH_GRAPH_NFA_H_
#define RPQLEARN_GRAPH_GRAPH_NFA_H_

#include <utility>
#include <vector>

#include "automata/nfa.h"
#include "graph/graph.h"

namespace rpqlearn {

/// The graph as an NFA whose language is `paths_G(initial)` (Sec. 2):
/// states = nodes, every state accepting, initial set = `initial`.
/// This is the central device of the paper's algorithms — `paths_G(X)` is a
/// regular language given by the graph itself.
Nfa GraphToNfa(const Graph& graph, const std::vector<NodeId>& initial);

/// The graph as an NFA whose language is `paths2_G(from, to)` (Appendix B):
/// initial = {from}, accepting = {to}.
Nfa GraphToNfaBetween(const Graph& graph, NodeId from, NodeId to);

/// An NFA whose language is the union of `paths2_G(νi, νi')` over all pairs:
/// one disjoint copy of the graph per pair. Used by the binary learner for
/// `paths2_G(S−)`. Size is |pairs|·|V|, so intended for small samples.
Nfa GraphToNfaPairs(const Graph& graph,
                    const std::vector<std::pair<NodeId, NodeId>>& pairs);

}  // namespace rpqlearn

#endif  // RPQLEARN_GRAPH_GRAPH_NFA_H_
