#include "graph/shard.h"

#include <algorithm>

#include "util/logging.h"

namespace rpqlearn {
namespace {

/// Splits the per-node weight prefix sums into `num_shards` even spans:
/// boundary s is the first node whose prefix weight reaches s/num_shards of
/// the total. Contiguous, deterministic, and monotone in s; empty ranges
/// appear only when a single node's weight exceeds a span (or the graph has
/// fewer nodes than shards).
std::vector<NodeId> WeightBalancedBoundaries(const Graph& graph,
                                             uint32_t num_shards) {
  const uint32_t n = graph.num_nodes();
  // weight(v) = 1 + deg_out(v) + deg_in(v): balances the adjacency arrays a
  // shard-local sweep touches, with the +1 keeping edge-free nodes spread.
  std::vector<uint64_t> prefix(n + 1, 0);
  for (NodeId v = 0; v < n; ++v) {
    const uint64_t weight = 1 + graph.OutEdges(v).size() + graph.InEdges(v).size();
    prefix[v + 1] = prefix[v] + weight;
  }
  const uint64_t total = prefix[n];
  std::vector<NodeId> boundaries(num_shards + 1, n);
  boundaries[0] = 0;
  for (uint32_t s = 1; s < num_shards; ++s) {
    const uint64_t target = total * s / num_shards;
    // First node whose prefix weight is >= target, clamped monotone.
    const auto it = std::lower_bound(prefix.begin(), prefix.end(), target);
    NodeId cut = static_cast<NodeId>(it - prefix.begin());
    boundaries[s] = std::max(boundaries[s - 1], std::min(cut, n));
  }
  return boundaries;
}

/// Fills one direction of one shard's CSRs: for each (local node, label)
/// cell, splits the graph's neighbor run into the in-shard part (remapped to
/// local ids) and the out-of-shard part (kept global). Neighbor runs are
/// ascending, so the in-shard part is one contiguous slice and both outputs
/// stay ascending.
void BuildDirection(const Graph& graph, NodeId begin, NodeId end,
                    std::span<const NodeId> (Graph::*neighbors)(NodeId, Symbol)
                        const,
                    std::vector<uint32_t>* internal_offsets,
                    std::vector<NodeId>* internal,
                    std::vector<uint32_t>* boundary_offsets,
                    std::vector<NodeId>* boundary) {
  const uint32_t sigma = graph.num_symbols();
  const size_t cells = static_cast<size_t>(end - begin) * sigma;
  internal_offsets->assign(cells + 1, 0);
  boundary_offsets->assign(cells + 1, 0);
  size_t cell = 0;
  for (NodeId v = begin; v < end; ++v) {
    for (Symbol a = 0; a < sigma; ++a, ++cell) {
      for (NodeId u : (graph.*neighbors)(v, a)) {
        if (u >= begin && u < end) {
          internal->push_back(u - begin);
        } else {
          boundary->push_back(u);
        }
      }
      (*internal_offsets)[cell + 1] = static_cast<uint32_t>(internal->size());
      (*boundary_offsets)[cell + 1] = static_cast<uint32_t>(boundary->size());
    }
  }
}

}  // namespace

ShardedGraph ShardedGraph::Partition(const Graph& graph, uint32_t num_shards) {
  RPQ_CHECK_GE(num_shards, 1u);
  ShardedGraph sharded;
  sharded.num_nodes_ = graph.num_nodes();
  sharded.num_graph_edges_ = graph.num_edges();
  sharded.graph_version_ = graph.version();
  sharded.boundaries_ = WeightBalancedBoundaries(graph, num_shards);
  sharded.shards_.resize(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    GraphShard& shard = sharded.shards_[s];
    shard.node_begin_ = sharded.boundaries_[s];
    shard.node_end_ = sharded.boundaries_[s + 1];
    shard.num_symbols_ = graph.num_symbols();
    BuildDirection(graph, shard.node_begin_, shard.node_end_,
                   &Graph::OutNeighbors, &shard.out_internal_offsets_,
                   &shard.out_internal_, &shard.out_boundary_offsets_,
                   &shard.out_boundary_);
    BuildDirection(graph, shard.node_begin_, shard.node_end_,
                   &Graph::InNeighbors, &shard.in_internal_offsets_,
                   &shard.in_internal_, &shard.in_boundary_offsets_,
                   &shard.in_boundary_);
    shard.num_internal_edges_ = shard.out_internal_.size();
    shard.num_out_boundary_edges_ = shard.out_boundary_.size();
    shard.num_in_boundary_edges_ = shard.in_boundary_.size();
    sharded.num_boundary_edges_ += shard.out_boundary_.size();
  }
  return sharded;
}

void GraphShard::PatchCell(
    const std::vector<uint32_t>& offsets, const std::vector<NodeId>& endpoints,
    std::unordered_map<uint64_t, std::vector<NodeId>>* patches, NodeId local_v,
    Symbol a, NodeId endpoint, bool insert) {
  const uint64_t cell = static_cast<uint64_t>(local_v) * num_symbols_ + a;
  const auto [it, fresh] = patches->try_emplace(cell);
  std::vector<NodeId>& run = it->second;
  if (fresh) {
    run.assign(endpoints.begin() + offsets[cell],
               endpoints.begin() + offsets[cell + 1]);
  }
  const auto pos = std::lower_bound(run.begin(), run.end(), endpoint);
  if (insert) {
    RPQ_DCHECK(pos == run.end() || *pos != endpoint);
    run.insert(pos, endpoint);
  } else {
    RPQ_DCHECK(pos != run.end() && *pos == endpoint);
    run.erase(pos);
  }
}

void GraphShard::EnterPatchedMode() {
  if (patched_) return;
  patched_ = true;
  const uint32_t n = num_local_nodes();
  out_boundary_degrees_.resize(n);
  in_boundary_degrees_.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    const size_t row = static_cast<size_t>(v) * num_symbols_;
    out_boundary_degrees_[v] =
        out_boundary_offsets_[row + num_symbols_] - out_boundary_offsets_[row];
    in_boundary_degrees_[v] =
        in_boundary_offsets_[row + num_symbols_] - in_boundary_offsets_[row];
  }
}

void ShardedGraph::ApplyEdgeUpdate(const Graph& graph, Symbol a, NodeId src,
                                   NodeId dst, bool inserted) {
  RPQ_CHECK(graph.num_nodes() == num_nodes_)
      << "sharded view maintained against a different graph ("
      << graph.num_nodes() << " nodes vs " << num_nodes_ << ")";
  num_graph_edges_ = graph.num_edges();
  graph_version_ = graph.version();

  const uint32_t ss = ShardOf(src);
  const uint32_t sd = ShardOf(dst);
  const int step = inserted ? 1 : -1;
  if (ss == sd) {
    GraphShard& shard = shards_[ss];
    shard.EnterPatchedMode();
    const NodeId local_src = src - shard.node_begin_;
    const NodeId local_dst = dst - shard.node_begin_;
    shard.PatchCell(shard.out_internal_offsets_, shard.out_internal_,
                    &shard.patched_out_internal_, local_src, a, local_dst,
                    inserted);
    shard.PatchCell(shard.in_internal_offsets_, shard.in_internal_,
                    &shard.patched_in_internal_, local_dst, a, local_src,
                    inserted);
    shard.num_internal_edges_ += step;
    return;
  }
  GraphShard& source_shard = shards_[ss];
  source_shard.EnterPatchedMode();
  const NodeId local_src = src - source_shard.node_begin_;
  source_shard.PatchCell(source_shard.out_boundary_offsets_,
                         source_shard.out_boundary_,
                         &source_shard.patched_out_boundary_, local_src, a,
                         dst, inserted);
  source_shard.num_out_boundary_edges_ += step;
  source_shard.out_boundary_degrees_[local_src] += step;

  GraphShard& target_shard = shards_[sd];
  target_shard.EnterPatchedMode();
  const NodeId local_dst = dst - target_shard.node_begin_;
  target_shard.PatchCell(target_shard.in_boundary_offsets_,
                         target_shard.in_boundary_,
                         &target_shard.patched_in_boundary_, local_dst, a,
                         src, inserted);
  target_shard.num_in_boundary_edges_ += step;
  target_shard.in_boundary_degrees_[local_dst] += step;

  num_boundary_edges_ += step;
}

uint32_t ShardedGraph::ShardOf(NodeId v) const {
  RPQ_DCHECK(v < num_nodes_);
  // Last boundary ≤ v. Boundaries are ascending with possible repeats
  // (empty shards); upper_bound lands past every shard starting at or
  // before v, and stepping back one entry names the non-empty owner.
  const auto it =
      std::upper_bound(boundaries_.begin(), boundaries_.end(), v);
  return static_cast<uint32_t>(it - boundaries_.begin()) - 1;
}

}  // namespace rpqlearn
