#ifndef RPQLEARN_GRAPH_IO_H_
#define RPQLEARN_GRAPH_IO_H_

#include <iosfwd>
#include <string>

#include "graph/graph.h"
#include "util/status.h"

namespace rpqlearn {

/// Text format for graph databases, one record per line:
///   `# comment`                     ignored
///   `node <id> <name>`              optional; declares a named node
///   `<src> <label> <dst>`           an edge; ids are dense non-negative ints
/// Nodes are created implicitly up to the largest id mentioned.
StatusOr<Graph> ReadGraphText(std::istream& in);

/// Writes the graph in the format accepted by ReadGraphText.
void WriteGraphText(const Graph& graph, std::ostream& out);

/// Edge-list format, the shape real-world labeled-graph dumps come in: one
/// edge per row, `<src> <label> <dst>`, separated by commas or whitespace
/// (per row — a row containing a comma splits on commas, otherwise on
/// whitespace, so CSV exports and space/tab-separated dumps both load
/// unchanged). `# comment` rows and blank rows are skipped. Node ids are
/// dense non-negative integers; nodes are created implicitly up to the
/// largest id mentioned; labels are interned by name in first-seen order.
/// The parse is streaming (one pass, one row buffered) and loud: a row with
/// the wrong field count, a non-integer endpoint, or an empty label is
/// InvalidArgument naming the row number — never silently skipped.
StatusOr<Graph> ReadEdgeList(std::istream& in);

/// Writes the graph's live edge set in the format accepted by ReadEdgeList
/// (whitespace-separated `<src> <label> <dst>` rows, one per edge). A graph
/// round-tripped through Write/ReadEdgeList has identical edges and labels
/// interned in the same order; node names are not part of the format, and
/// isolated nodes above the largest edge-mentioned id do not survive (the
/// reader sizes the graph by the ids it sees).
void WriteEdgeList(const Graph& graph, std::ostream& out);

/// File wrappers around the stream functions.
StatusOr<Graph> LoadGraphFile(const std::string& path);
Status SaveGraphFile(const Graph& graph, const std::string& path);
StatusOr<Graph> LoadEdgeList(const std::string& path);
Status SaveEdgeList(const Graph& graph, const std::string& path);

}  // namespace rpqlearn

#endif  // RPQLEARN_GRAPH_IO_H_
