#ifndef RPQLEARN_GRAPH_IO_H_
#define RPQLEARN_GRAPH_IO_H_

#include <iosfwd>
#include <string>

#include "graph/graph.h"
#include "util/status.h"

namespace rpqlearn {

/// Text format for graph databases, one record per line:
///   `# comment`                     ignored
///   `node <id> <name>`              optional; declares a named node
///   `<src> <label> <dst>`           an edge; ids are dense non-negative ints
/// Nodes are created implicitly up to the largest id mentioned.
StatusOr<Graph> ReadGraphText(std::istream& in);

/// Writes the graph in the format accepted by ReadGraphText.
void WriteGraphText(const Graph& graph, std::ostream& out);

/// File wrappers around the stream functions.
StatusOr<Graph> LoadGraphFile(const std::string& path);
Status SaveGraphFile(const Graph& graph, const std::string& path);

}  // namespace rpqlearn

#endif  // RPQLEARN_GRAPH_IO_H_
