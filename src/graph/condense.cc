#include "graph/condense.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "util/logging.h"

namespace rpqlearn {
namespace {

constexpr uint32_t kUnvisited = std::numeric_limits<uint32_t>::max();

/// One DFS frame of the iterative Tarjan walk: the node and how many of its
/// out-neighbors (under the current label) have been examined.
struct TarjanFrame {
  NodeId node;
  uint32_t next_edge;
};

}  // namespace

/// Tarjan's SCC algorithm over the `a`-labeled subgraph, with an explicit
/// frame stack instead of recursion (graph diameters can exceed any safe
/// call-stack depth). Component ids are assigned in completion order, which
/// on the condensation DAG is reverse topological: every cross-component
/// edge points from a higher id to a lower one.
LabelCondensation CondensedGraph::CondenseLabel(const Graph& graph,
                                                Symbol a) {
  const uint32_t nv = graph.num_nodes();
  LabelCondensation out;
  out.comp_.assign(nv, kUnvisited);

  std::vector<uint32_t> index(nv, kUnvisited);
  std::vector<uint32_t> lowlink(nv, 0);
  std::vector<uint8_t> on_stack(nv, 0);
  std::vector<NodeId> scc_stack;
  std::vector<TarjanFrame> frames;
  uint32_t next_index = 0;
  uint32_t next_comp = 0;

  auto open_node = [&](NodeId v) {
    index[v] = lowlink[v] = next_index++;
    scc_stack.push_back(v);
    on_stack[v] = 1;
    frames.push_back(TarjanFrame{v, 0});
  };

  for (NodeId root = 0; root < nv; ++root) {
    if (index[root] != kUnvisited) continue;
    open_node(root);
    while (!frames.empty()) {
      TarjanFrame& frame = frames.back();
      const NodeId v = frame.node;
      const std::span<const NodeId> targets = graph.OutNeighbors(v, a);
      if (frame.next_edge < targets.size()) {
        const NodeId w = targets[frame.next_edge++];
        if (index[w] == kUnvisited) {
          open_node(w);
        } else if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
      } else {
        if (lowlink[v] == index[v]) {
          // v is the root of a component: pop its members off the stack.
          for (;;) {
            const NodeId w = scc_stack.back();
            scc_stack.pop_back();
            on_stack[w] = 0;
            out.comp_[w] = next_comp;
            if (w == v) break;
          }
          ++next_comp;
        }
        frames.pop_back();
        if (!frames.empty()) {
          lowlink[frames.back().node] =
              std::min(lowlink[frames.back().node], lowlink[v]);
        }
      }
    }
  }
  RPQ_DCHECK(scc_stack.empty());

  // Component → member CSR: counting sort over comp ids keeps each member
  // run ascending (nodes are scanned in id order).
  out.member_offsets_.assign(next_comp + 1, 0);
  for (NodeId v = 0; v < nv; ++v) ++out.member_offsets_[out.comp_[v] + 1];
  for (uint32_t c = 0; c < next_comp; ++c) {
    out.member_offsets_[c + 1] += out.member_offsets_[c];
  }
  out.members_.resize(nv);
  {
    std::vector<uint32_t> cursor(out.member_offsets_.begin(),
                                 out.member_offsets_.end() - 1);
    for (NodeId v = 0; v < nv; ++v) out.members_[cursor[out.comp_[v]]++] = v;
  }

  BuildDagCsrs(graph, a, &out);

  CondensationSummary& summary = out.summary_;
  summary.num_components = next_comp;
  summary.largest_component = nv == 0 ? 0 : 1;
  for (uint32_t c = 0; c < next_comp; ++c) {
    const uint32_t size =
        out.member_offsets_[c + 1] - out.member_offsets_[c];
    summary.largest_component = std::max(summary.largest_component, size);
    if (size >= 2) {
      ++summary.nontrivial_components;
      summary.collapsed_nodes += size;
    }
  }
  summary.collapse_ratio =
      nv == 0 ? 0.0 : static_cast<double>(summary.collapsed_nodes) / nv;
  return out;
}

/// Rebuilds out->dag_out_*/dag_in_* from out->comp_ by scanning every
/// `a`-labeled edge of `graph`. Requires comp_ and member_offsets_ to be
/// current; leaves components, members, and summary untouched, so it serves
/// both fresh condensation and the kDagRebuilt incremental-repair path
/// (cross-component update on a frozen component map).
void CondensedGraph::BuildDagCsrs(const Graph& graph, Symbol a,
                                  LabelCondensation* out) {
  const uint32_t nv = graph.num_nodes();
  const uint32_t num_comps =
      static_cast<uint32_t>(out->member_offsets_.size()) - 1;

  // Cross-component edges, deduped, as forward and transpose CSRs.
  std::vector<std::pair<uint32_t, uint32_t>> dag_edges;
  for (NodeId v = 0; v < nv; ++v) {
    const uint32_t cv = out->comp_[v];
    for (NodeId w : graph.OutNeighbors(v, a)) {
      const uint32_t cw = out->comp_[w];
      if (cw != cv) dag_edges.emplace_back(cv, cw);
    }
  }
  std::sort(dag_edges.begin(), dag_edges.end());
  dag_edges.erase(std::unique(dag_edges.begin(), dag_edges.end()),
                  dag_edges.end());

  out->dag_out_offsets_.assign(num_comps + 1, 0);
  out->dag_in_offsets_.assign(num_comps + 1, 0);
  for (const auto& [cv, cw] : dag_edges) {
    ++out->dag_out_offsets_[cv + 1];
    ++out->dag_in_offsets_[cw + 1];
  }
  for (uint32_t c = 0; c < num_comps; ++c) {
    out->dag_out_offsets_[c + 1] += out->dag_out_offsets_[c];
    out->dag_in_offsets_[c + 1] += out->dag_in_offsets_[c];
  }
  out->dag_out_.resize(dag_edges.size());
  out->dag_in_.resize(dag_edges.size());
  {
    std::vector<uint32_t> out_cursor(out->dag_out_offsets_.begin(),
                                     out->dag_out_offsets_.end() - 1);
    std::vector<uint32_t> in_cursor(out->dag_in_offsets_.begin(),
                                    out->dag_in_offsets_.end() - 1);
    // dag_edges is (source asc, target asc), so both fills stay ascending
    // per cell (the in-fill visits each target's sources in ascending
    // source order because the pair sort is lexicographic).
    for (const auto& [cv, cw] : dag_edges) {
      out->dag_out_[out_cursor[cv]++] = cw;
    }
    std::stable_sort(dag_edges.begin(), dag_edges.end(),
                     [](const auto& x, const auto& y) {
                       return x.second < y.second;
                     });
    for (const auto& [cv, cw] : dag_edges) {
      out->dag_in_[in_cursor[cw]++] = cv;
    }
  }
}

CondensedGraph CondensedGraph::Build(const Graph& graph) {
  std::vector<Symbol> labels(graph.num_symbols());
  for (Symbol a = 0; a < graph.num_symbols(); ++a) labels[a] = a;
  return Build(graph, labels);
}

CondensedGraph CondensedGraph::Build(const Graph& graph,
                                     std::span<const Symbol> labels) {
  CondensedGraph out;
  out.num_nodes_ = graph.num_nodes();
  out.num_graph_edges_ = graph.num_edges();
  out.graph_version_ = graph.version();
  out.built_.assign(graph.num_symbols(), 0);
  out.labels_.resize(graph.num_symbols());
  for (Symbol a : labels) {
    RPQ_CHECK(a < graph.num_symbols())
        << "condensation label " << a << " out of range (graph has "
        << graph.num_symbols() << " symbols)";
    if (out.built_[a]) continue;
    out.labels_[a] = CondenseLabel(graph, a);
    out.built_[a] = 1;
  }
  return out;
}

CondenseRepair CondensedGraph::ApplyEdgeUpdate(const Graph& graph, Symbol a,
                                               NodeId src, NodeId dst,
                                               bool inserted) {
  RPQ_CHECK(graph.num_nodes() == num_nodes_)
      << "condensation maintained against a different graph ("
      << graph.num_nodes() << " nodes vs " << num_nodes_ << ")";
  num_graph_edges_ = graph.num_edges();
  graph_version_ = graph.version();
  if (!HasLabel(a)) return CondenseRepair::kUntouchedLabel;

  LabelCondensation& lc = labels_[a];
  const uint32_t cs = lc.comp_[src];
  const uint32_t cd = lc.comp_[dst];

  if (inserted) {
    if (cs == cd) {
      // Both endpoints already share an SCC: the new edge is absorbed by
      // the component and no DAG edge appears.
      return CondenseRepair::kNoStructuralChange;
    }
    if (cs > cd) {
      // Component ids are reverse topological (every DAG edge points from
      // a higher id to a lower one), so an edge cs --> cd with cs > cd
      // cannot close a cycle — if cd could already reach cs, some existing
      // DAG edge on that path would point low --> high, contradicting the
      // invariant. Components are therefore frozen, the id order still
      // witnesses reverse-topological, and only the DAG CSRs change.
      BuildDagCsrs(graph, a, &lc);
      return CondenseRepair::kDagRebuilt;
    }
    // cs < cd: the insert may have merged a chain of components (dst could
    // reach src). Re-run Tarjan for this label only.
    lc = CondenseLabel(graph, a);
    return CondenseRepair::kLabelRetarjaned;
  }

  // Deletion.
  if (cs != cd) {
    // A cross-component edge never participates in any SCC; removing it can
    // only thin the DAG (possibly dropping a deduped DAG edge if this was
    // the last parallel graph edge between the two components).
    BuildDagCsrs(graph, a, &lc);
    return CondenseRepair::kDagRebuilt;
  }
  if (src == dst) {
    // A self-loop is internal to its (singleton or larger) component and
    // carries no connectivity: removing it changes nothing structural.
    return CondenseRepair::kNoStructuralChange;
  }
  // Intra-component deletion may split the SCC. Re-run Tarjan per label.
  lc = CondenseLabel(graph, a);
  return CondenseRepair::kLabelRetarjaned;
}

}  // namespace rpqlearn
