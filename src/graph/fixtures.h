#ifndef RPQLEARN_GRAPH_FIXTURES_H_
#define RPQLEARN_GRAPH_FIXTURES_H_

#include <vector>

#include "graph/graph.h"

namespace rpqlearn {

/// A graph plus the node sets of a labeled sample, as used by the paper's
/// running examples.
struct FixtureSample {
  std::vector<NodeId> positive;
  std::vector<NodeId> negative;
};

/// Figure 1: the geographical example. Nodes N1..N6, C1, C2, R1, R2 and
/// labels {tram, bus, cinema, restaurant}. The paper's exact edge set is not
/// fully listed, so this is a faithful reconstruction satisfying every fact
/// stated in Sec. 1: the query `(tram+bus)*.cinema` selects exactly
/// {N1, N2, N4, N6}, via the quoted witness paths, and N5 is a valid
/// negative example.
Graph Figure1Geographic();

/// Figure 3: the graph G0 over {a, b, c}. Reconstructed to satisfy the
/// properties the paper states about G0:
///  * `a` selects all nodes except ν4; `(a.b)*.c` selects exactly {ν1, ν3};
///    `b.b.c.c` selects nothing;
///  * paths(ν5) is the small finite set {ε, a, b} (the paper's G0 has
///    {ε, a, b, c}, but a c-path at ν5 would contradict the paper's own
///    claim that (a.b)*.c selects only ν1 and ν3, so the c edge is dropped);
///  * paths(ν1) is infinite;
///  * `aba` matches ν1ν2ν3ν4 and ν3ν2ν3ν4;
///  * with S+ = {ν1, ν3}, S− = {ν2, ν7}: the SCPs are abc (for ν1) and c
///    (for ν3); merging ε–a is rejected because of path bc ∈ paths(ν2);
///    merging ε–c is rejected because of ε; merging ε–ab yields `(a.b)*.c`.
/// Node ids: index i holds νi+1 (so ν1 = node 0, ..., ν7 = node 6).
Graph Figure3G0();

/// The Figure 3 sample S+ = {ν1, ν3}, S− = {ν2, ν7} in node ids.
FixtureSample Figure3Sample();

/// Figure 5: a positive node with infinitely many paths, all covered by the
/// two negative nodes — an inconsistent sample. Node 0 is positive,
/// nodes 1 and 2 negative.
Graph Figure5Inconsistent();
FixtureSample Figure5Sample();

/// Figure 8: a graph and a labeling consistent with `(a.b)*.c` on which that
/// goal is indistinguishable from the query `a`: both select exactly the two
/// positive nodes. Node ids: 0 = m1 (−), 1 = m2 (+), 2 = m3 (+), 3 = m4 (−).
Graph Figure8EquivalentOnly();
FixtureSample Figure8Sample();

/// Figure 10: one positive, one negative and one unlabeled node over {a, b};
/// the unlabeled node (id 2) is certain-positive: every consistent query
/// must select it. Node ids: 0 = positive, 1 = negative, 2 = unlabeled,
/// 3 = sink.
Graph Figure10Certain();
FixtureSample Figure10Sample();

}  // namespace rpqlearn

#endif  // RPQLEARN_GRAPH_FIXTURES_H_
