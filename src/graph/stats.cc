#include "graph/stats.h"

#include <algorithm>
#include <sstream>

namespace rpqlearn {

GraphStats ComputeGraphStats(const Graph& graph) {
  GraphStats stats;
  stats.num_nodes = graph.num_nodes();
  stats.num_edges = graph.num_edges();
  stats.num_labels = graph.num_symbols();
  stats.label_histogram.assign(graph.num_symbols(), 0);
  uint32_t sinks = 0;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    uint32_t out = graph.OutDegree(v);
    uint32_t in = static_cast<uint32_t>(graph.InEdges(v).size());
    stats.max_out_degree = std::max(stats.max_out_degree, out);
    stats.max_in_degree = std::max(stats.max_in_degree, in);
    if (out == 0) ++sinks;
    for (const LabeledEdge& e : graph.OutEdges(v)) {
      ++stats.label_histogram[e.label];
    }
  }
  if (stats.num_nodes > 0) {
    stats.avg_out_degree =
        static_cast<double>(stats.num_edges) / stats.num_nodes;
    stats.sink_fraction = static_cast<double>(sinks) / stats.num_nodes;
  }
  return stats;
}

std::string StatsToString(const GraphStats& stats, const Alphabet& alphabet) {
  std::ostringstream out;
  out << "nodes=" << stats.num_nodes << " edges=" << stats.num_edges
      << " labels=" << stats.num_labels
      << " avg_out_degree=" << stats.avg_out_degree
      << " max_out=" << stats.max_out_degree
      << " max_in=" << stats.max_in_degree
      << " sink_fraction=" << stats.sink_fraction << "\n";
  out << "label histogram:";
  for (Symbol a = 0; a < stats.label_histogram.size(); ++a) {
    out << " " << alphabet.Name(a) << ":" << stats.label_histogram[a];
  }
  out << "\n";
  return out.str();
}

}  // namespace rpqlearn
