#include "graph/graph_nfa.h"

namespace rpqlearn {
namespace {

/// Appends one copy of the graph to `nfa` — a state per node (accepting
/// according to `accepting`), a transition per edge — and returns the
/// state-id offset of the copy. The single builder behind all graph→NFA
/// conversions; capacity is reserved up front from the graph's node count
/// and per-node out-degrees (num_edges in total) before the bulk
/// AddTransition loop.
template <typename AcceptFn>
StateId AppendGraphCopy(const Graph& graph, AcceptFn accepting, Nfa* nfa) {
  const StateId offset = nfa->num_states();
  nfa->ReserveStates(offset + graph.num_nodes());
  for (NodeId v = 0; v < graph.num_nodes(); ++v) nfa->AddState(accepting(v));
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    nfa->ReserveTransitions(v + offset, graph.OutDegree(v));
    for (const LabeledEdge& e : graph.OutEdges(v)) {
      nfa->AddTransition(v + offset, e.label, e.node + offset);
    }
  }
  return offset;
}

}  // namespace

Nfa GraphToNfa(const Graph& graph, const std::vector<NodeId>& initial) {
  Nfa nfa(graph.num_symbols());
  AppendGraphCopy(graph, [](NodeId) { return true; }, &nfa);
  for (NodeId v : initial) nfa.AddInitial(v);
  nfa.Finalize();
  return nfa;
}

Nfa GraphToNfaBetween(const Graph& graph, NodeId from, NodeId to) {
  Nfa nfa(graph.num_symbols());
  AppendGraphCopy(graph, [to](NodeId v) { return v == to; }, &nfa);
  nfa.AddInitial(from);
  nfa.Finalize();
  return nfa;
}

Nfa GraphToNfaPairs(const Graph& graph,
                    const std::vector<std::pair<NodeId, NodeId>>& pairs) {
  Nfa nfa(graph.num_symbols());
  // Reserve all copies at once: the per-copy reserve below asks for exact
  // sizes, which would reallocate every copy if left to grow one at a time.
  nfa.ReserveStates(static_cast<uint32_t>(pairs.size() * graph.num_nodes()));
  for (const auto& [from, to] : pairs) {
    StateId offset =
        AppendGraphCopy(graph, [to](NodeId v) { return v == to; }, &nfa);
    nfa.AddInitial(offset + from);
  }
  nfa.Finalize();
  return nfa;
}

}  // namespace rpqlearn
