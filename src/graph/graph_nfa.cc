#include "graph/graph_nfa.h"

namespace rpqlearn {
namespace {

/// Adds all graph edges as transitions with the given state-id offset.
void CopyEdges(const Graph& graph, StateId offset, Nfa* nfa) {
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    for (const LabeledEdge& e : graph.OutEdges(v)) {
      nfa->AddTransition(v + offset, e.label, e.node + offset);
    }
  }
}

}  // namespace

Nfa GraphToNfa(const Graph& graph, const std::vector<NodeId>& initial) {
  Nfa nfa(graph.num_symbols());
  for (NodeId v = 0; v < graph.num_nodes(); ++v) nfa.AddState(true);
  CopyEdges(graph, 0, &nfa);
  for (NodeId v : initial) nfa.AddInitial(v);
  nfa.Finalize();
  return nfa;
}

Nfa GraphToNfaBetween(const Graph& graph, NodeId from, NodeId to) {
  Nfa nfa(graph.num_symbols());
  for (NodeId v = 0; v < graph.num_nodes(); ++v) nfa.AddState(v == to);
  CopyEdges(graph, 0, &nfa);
  nfa.AddInitial(from);
  nfa.Finalize();
  return nfa;
}

Nfa GraphToNfaPairs(const Graph& graph,
                    const std::vector<std::pair<NodeId, NodeId>>& pairs) {
  Nfa nfa(graph.num_symbols());
  for (size_t i = 0; i < pairs.size(); ++i) {
    StateId offset = static_cast<StateId>(i * graph.num_nodes());
    for (NodeId v = 0; v < graph.num_nodes(); ++v) {
      nfa.AddState(v == pairs[i].second);
    }
    CopyEdges(graph, offset, &nfa);
    nfa.AddInitial(offset + pairs[i].first);
  }
  nfa.Finalize();
  return nfa;
}

}  // namespace rpqlearn
