#include "graph/generators.h"

#include "util/logging.h"

namespace rpqlearn {

Graph GenerateScaleFree(const ScaleFreeOptions& options) {
  RPQ_CHECK_GT(options.num_nodes, 1u);
  RPQ_CHECK_GT(options.num_labels, 0u);
  Rng rng(options.seed);
  ZipfDistribution label_dist(options.num_labels, options.zipf_exponent);

  GraphBuilder builder;
  builder.AddNodes(options.num_nodes);
  std::vector<Symbol> labels;
  if (options.label_names.empty()) {
    for (uint32_t i = 0; i < options.num_labels; ++i) {
      labels.push_back(builder.InternLabel("l" + std::to_string(i)));
    }
  } else {
    RPQ_CHECK_EQ(options.label_names.size(), options.num_labels);
    for (const std::string& name : options.label_names) {
      labels.push_back(builder.InternLabel(name));
    }
  }

  // Preferential attachment: `endpoint_pool` holds one entry per incident
  // edge endpoint, so sampling from it is degree-proportional.
  std::vector<NodeId> endpoint_pool;
  endpoint_pool.reserve(2 * options.num_edges + 2);

  auto pick_node = [&]() -> NodeId {
    if (!endpoint_pool.empty() &&
        rng.NextBernoulli(options.preferential_probability)) {
      return endpoint_pool[rng.NextBelow(endpoint_pool.size())];
    }
    return static_cast<NodeId>(rng.NextBelow(options.num_nodes));
  };

  for (size_t i = 0; i < options.num_edges; ++i) {
    NodeId src = pick_node();
    NodeId dst = pick_node();
    Symbol label = labels[label_dist.Sample(&rng)];
    builder.AddEdge(src, label, dst);
    endpoint_pool.push_back(src);
    endpoint_pool.push_back(dst);
  }
  return builder.Build();
}

Graph GenerateErdosRenyi(const ErdosRenyiOptions& options) {
  RPQ_CHECK_GT(options.num_nodes, 0u);
  RPQ_CHECK_GT(options.num_labels, 0u);
  Rng rng(options.seed);
  GraphBuilder builder;
  builder.AddNodes(options.num_nodes);
  std::vector<Symbol> labels;
  for (uint32_t i = 0; i < options.num_labels; ++i) {
    labels.push_back(builder.InternLabel("l" + std::to_string(i)));
  }
  for (size_t i = 0; i < options.num_edges; ++i) {
    NodeId src = static_cast<NodeId>(rng.NextBelow(options.num_nodes));
    NodeId dst = static_cast<NodeId>(rng.NextBelow(options.num_nodes));
    Symbol label = labels[rng.NextBelow(labels.size())];
    builder.AddEdge(src, label, dst);
  }
  return builder.Build();
}

}  // namespace rpqlearn
