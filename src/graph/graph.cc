#include "graph/graph.h"

#include <algorithm>

#include "util/logging.h"

namespace rpqlearn {

std::span<const LabeledEdge> Graph::OutEdgesWithLabel(NodeId v,
                                                      Symbol a) const {
  auto edges = OutEdges(v);
  auto lo = std::lower_bound(
      edges.begin(), edges.end(), a,
      [](const LabeledEdge& e, Symbol sym) { return e.label < sym; });
  auto hi = std::upper_bound(
      edges.begin(), edges.end(), a,
      [](Symbol sym, const LabeledEdge& e) { return sym < e.label; });
  return {edges.data() + (lo - edges.begin()), static_cast<size_t>(hi - lo)};
}

NodeId Graph::FindNodeByName(std::string_view name) const {
  for (NodeId v = 0; v < num_nodes(); ++v) {
    if (names_[v] == name) return v;
  }
  return num_nodes();
}

bool Graph::HasPathFrom(NodeId from, const Word& word) const {
  std::vector<NodeId> current{from};
  std::vector<bool> in_next(num_nodes(), false);
  for (Symbol a : word) {
    std::vector<NodeId> next;
    for (NodeId v : current) {
      for (const LabeledEdge& e : OutEdgesWithLabel(v, a)) {
        if (!in_next[e.node]) {
          in_next[e.node] = true;
          next.push_back(e.node);
        }
      }
    }
    if (next.empty()) return false;
    for (NodeId v : next) in_next[v] = false;
    current = std::move(next);
  }
  return true;
}

bool Graph::HasPathBetween(NodeId from, NodeId to, const Word& word) const {
  std::vector<NodeId> current{from};
  std::vector<bool> in_next(num_nodes(), false);
  for (Symbol a : word) {
    std::vector<NodeId> next;
    for (NodeId v : current) {
      for (const LabeledEdge& e : OutEdgesWithLabel(v, a)) {
        if (!in_next[e.node]) {
          in_next[e.node] = true;
          next.push_back(e.node);
        }
      }
    }
    if (next.empty()) return false;
    for (NodeId v : next) in_next[v] = false;
    current = std::move(next);
  }
  return std::find(current.begin(), current.end(), to) != current.end();
}

NodeId GraphBuilder::AddNode(std::string_view name) {
  NodeId id = static_cast<NodeId>(names_.size());
  names_.emplace_back(name.empty() ? "v" + std::to_string(id)
                                   : std::string(name));
  return id;
}

NodeId GraphBuilder::AddNodes(uint32_t count) {
  NodeId first = static_cast<NodeId>(names_.size());
  for (uint32_t i = 0; i < count; ++i) AddNode();
  return first;
}

void GraphBuilder::InternLabels(const std::vector<std::string>& labels) {
  for (const auto& label : labels) alphabet_.Intern(label);
}

void GraphBuilder::AddEdge(NodeId src, Symbol label, NodeId dst) {
  RPQ_CHECK_LT(src, names_.size());
  RPQ_CHECK_LT(dst, names_.size());
  RPQ_CHECK_LT(label, alphabet_.size());
  edges_.push_back(RawEdge{src, label, dst});
}

Graph GraphBuilder::Build() {
  Graph graph;
  graph.alphabet_ = std::move(alphabet_);
  graph.names_ = std::move(names_);
  const uint32_t n = static_cast<uint32_t>(graph.names_.size());

  // Deduplicate edges.
  std::sort(edges_.begin(), edges_.end(),
            [](const RawEdge& a, const RawEdge& b) {
              if (a.src != b.src) return a.src < b.src;
              if (a.label != b.label) return a.label < b.label;
              return a.dst < b.dst;
            });
  edges_.erase(std::unique(edges_.begin(), edges_.end(),
                           [](const RawEdge& a, const RawEdge& b) {
                             return a.src == b.src && a.label == b.label &&
                                    a.dst == b.dst;
                           }),
               edges_.end());

  // Forward CSR (edges_ already sorted by (src, label, dst)).
  graph.out_offsets_.assign(n + 1, 0);
  for (const RawEdge& e : edges_) ++graph.out_offsets_[e.src + 1];
  for (uint32_t v = 0; v < n; ++v) {
    graph.out_offsets_[v + 1] += graph.out_offsets_[v];
  }
  graph.out_edges_.reserve(edges_.size());
  for (const RawEdge& e : edges_) {
    graph.out_edges_.push_back(LabeledEdge{e.label, e.dst});
  }

  // Reverse CSR, sorted by (dst, label, src).
  std::sort(edges_.begin(), edges_.end(),
            [](const RawEdge& a, const RawEdge& b) {
              if (a.dst != b.dst) return a.dst < b.dst;
              if (a.label != b.label) return a.label < b.label;
              return a.src < b.src;
            });
  graph.in_offsets_.assign(n + 1, 0);
  for (const RawEdge& e : edges_) ++graph.in_offsets_[e.dst + 1];
  for (uint32_t v = 0; v < n; ++v) {
    graph.in_offsets_[v + 1] += graph.in_offsets_[v];
  }
  graph.in_edges_.reserve(edges_.size());
  for (const RawEdge& e : edges_) {
    graph.in_edges_.push_back(LabeledEdge{e.label, e.src});
  }

  // Label-grouped CSR over both directions. The adjacency arrays above are
  // sorted by (node, label, endpoint), so each (node, label) run is already
  // contiguous; this pass just records run boundaries and strips the labels
  // into flat endpoint arrays for dense iteration.
  RPQ_CHECK_LE(edges_.size(), static_cast<size_t>(UINT32_MAX));
  const uint32_t sigma = graph.alphabet_.size();
  const size_t cells = static_cast<size_t>(n) * sigma;
  auto build_label_csr = [&](const std::vector<size_t>& node_offsets,
                             const std::vector<LabeledEdge>& edges,
                             std::vector<uint32_t>* label_offsets,
                             std::vector<NodeId>* endpoints) {
    label_offsets->assign(cells + 1, 0);
    for (uint32_t v = 0; v < n; ++v) {
      for (size_t i = node_offsets[v]; i < node_offsets[v + 1]; ++i) {
        ++(*label_offsets)[static_cast<size_t>(v) * sigma + edges[i].label + 1];
      }
    }
    for (size_t c = 0; c < cells; ++c) {
      (*label_offsets)[c + 1] += (*label_offsets)[c];
    }
    endpoints->reserve(edges.size());
    for (const LabeledEdge& e : edges) endpoints->push_back(e.node);
  };
  build_label_csr(graph.out_offsets_, graph.out_edges_,
                  &graph.out_label_offsets_, &graph.out_targets_);
  build_label_csr(graph.in_offsets_, graph.in_edges_,
                  &graph.in_label_offsets_, &graph.in_sources_);

  graph.num_edges_ = graph.out_edges_.size();
  graph.label_versions_.assign(sigma, 0);
  graph.label_deltas_.resize(sigma);

  edges_.clear();
  return graph;
}

// ----------------------------------------------------- delta-edge overlay

namespace {

/// Sorted-vector insert/erase for the per-label delta buffers.
void InsertPair(std::vector<std::pair<NodeId, NodeId>>* buffer,
                std::pair<NodeId, NodeId> entry) {
  buffer->insert(std::lower_bound(buffer->begin(), buffer->end(), entry),
                 entry);
}

/// Erases `entry` when present; returns whether it was.
bool ErasePair(std::vector<std::pair<NodeId, NodeId>>* buffer,
               std::pair<NodeId, NodeId> entry) {
  const auto it = std::lower_bound(buffer->begin(), buffer->end(), entry);
  if (it == buffer->end() || *it != entry) return false;
  buffer->erase(it);
  return true;
}

}  // namespace

bool Graph::HasEdge(NodeId src, Symbol label, NodeId dst) const {
  const std::span<const NodeId> targets = OutNeighbors(src, label);
  return std::binary_search(targets.begin(), targets.end(), dst);
}

bool Graph::HasBaseEdge(NodeId src, Symbol label, NodeId dst) const {
  const size_t cell = static_cast<size_t>(src) * num_symbols() + label;
  const NodeId* begin = out_targets_.data() + out_label_offsets_[cell];
  const NodeId* end = out_targets_.data() + out_label_offsets_[cell + 1];
  return std::binary_search(begin, end, dst);
}

void Graph::PatchAdjacency(NodeId src, Symbol label, NodeId dst,
                           bool insert) {
  const uint32_t sigma = num_symbols();
  // A cell (or node edge list) is materialized from the *base* arrays on
  // its first patch — correct because a cell absent from a map has, by
  // construction, no pending delta yet.
  const auto patch_cell =
      [&](std::unordered_map<uint64_t, std::vector<NodeId>>* cells,
          const std::vector<uint32_t>& offsets,
          const std::vector<NodeId>& endpoints, NodeId node,
          NodeId endpoint) {
        const uint64_t cell = static_cast<uint64_t>(node) * sigma + label;
        auto [it, fresh] = cells->try_emplace(cell);
        if (fresh) {
          it->second.assign(endpoints.begin() + offsets[cell],
                            endpoints.begin() + offsets[cell + 1]);
        }
        std::vector<NodeId>& run = it->second;
        const auto pos = std::lower_bound(run.begin(), run.end(), endpoint);
        if (insert) {
          run.insert(pos, endpoint);
        } else {
          RPQ_DCHECK(pos != run.end() && *pos == endpoint);
          run.erase(pos);
        }
      };
  const auto patch_edges =
      [&](std::unordered_map<NodeId, std::vector<LabeledEdge>>* lists,
          const std::vector<size_t>& offsets,
          const std::vector<LabeledEdge>& edges, NodeId node,
          NodeId endpoint) {
        auto [it, fresh] = lists->try_emplace(node);
        if (fresh) {
          it->second.assign(edges.begin() + offsets[node],
                            edges.begin() + offsets[node + 1]);
        }
        std::vector<LabeledEdge>& list = it->second;
        const LabeledEdge entry{label, endpoint};
        const auto pos = std::lower_bound(list.begin(), list.end(), entry);
        if (insert) {
          list.insert(pos, entry);
        } else {
          RPQ_DCHECK(pos != list.end() && *pos == entry);
          list.erase(pos);
        }
      };
  patch_cell(&patched_out_cells_, out_label_offsets_, out_targets_, src, dst);
  patch_cell(&patched_in_cells_, in_label_offsets_, in_sources_, dst, src);
  patch_edges(&patched_out_edges_, out_offsets_, out_edges_, src, dst);
  patch_edges(&patched_in_edges_, in_offsets_, in_edges_, dst, src);
}

void Graph::DropDeltaStateIfClean() {
  if (num_pending_deltas() != 0) return;
  // Every pending delta has been cancelled, so each patched run equals its
  // base run again — drop the overlay and return reads to the fast path.
  patched_out_cells_.clear();
  patched_in_cells_.clear();
  patched_out_edges_.clear();
  patched_in_edges_.clear();
  has_deltas_ = false;
}

size_t Graph::num_pending_deltas() const {
  size_t pending = 0;
  for (const LabelDelta& delta : label_deltas_) {
    pending += delta.inserts.size() + delta.deletes.size();
  }
  return pending;
}

bool Graph::InsertEdge(NodeId src, Symbol label, NodeId dst) {
  RPQ_CHECK_LT(src, num_nodes());
  RPQ_CHECK_LT(dst, num_nodes());
  RPQ_CHECK_LT(label, num_symbols());
  if (HasEdge(src, label, dst)) return false;
  LabelDelta& delta = label_deltas_[label];
  const std::pair<NodeId, NodeId> entry{src, dst};
  if (!ErasePair(&delta.deletes, entry)) {
    // Not a re-insert of a deleted base edge: a genuinely new delta edge.
    InsertPair(&delta.inserts, entry);
  }
  has_deltas_ = true;
  PatchAdjacency(src, label, dst, /*insert=*/true);
  ++num_edges_;
  ++version_;
  ++label_versions_[label];
  DropDeltaStateIfClean();
  return true;
}

bool Graph::DeleteEdge(NodeId src, Symbol label, NodeId dst) {
  RPQ_CHECK_LT(src, num_nodes());
  RPQ_CHECK_LT(dst, num_nodes());
  RPQ_CHECK_LT(label, num_symbols());
  if (!HasEdge(src, label, dst)) return false;
  LabelDelta& delta = label_deltas_[label];
  const std::pair<NodeId, NodeId> entry{src, dst};
  if (!ErasePair(&delta.inserts, entry)) {
    // A live base edge: record its removal.
    RPQ_DCHECK(HasBaseEdge(src, label, dst));
    InsertPair(&delta.deletes, entry);
  }
  has_deltas_ = true;
  PatchAdjacency(src, label, dst, /*insert=*/false);
  --num_edges_;
  ++version_;
  ++label_versions_[label];
  DropDeltaStateIfClean();
  return true;
}

void Graph::Compact() {
  if (!has_deltas_) return;
  GraphBuilder builder;
  for (Symbol a = 0; a < num_symbols(); ++a) {
    builder.InternLabel(alphabet_.Name(a));
  }
  for (NodeId v = 0; v < num_nodes(); ++v) builder.AddNode(names_[v]);
  for (NodeId v = 0; v < num_nodes(); ++v) {
    for (const LabeledEdge& e : OutEdges(v)) {
      builder.AddEdge(v, e.label, e.node);
    }
  }
  Graph rebuilt = builder.Build();
  // Compaction changes the storage layout, never the live edge set, so the
  // mutation counters carry over: caches maintained up to this version stay
  // valid across the fold.
  rebuilt.version_ = version_;
  rebuilt.label_versions_ = std::move(label_versions_);
  *this = std::move(rebuilt);
}

}  // namespace rpqlearn
