#include "graph/graph.h"

#include <algorithm>

#include "util/logging.h"

namespace rpqlearn {

std::span<const LabeledEdge> Graph::OutEdgesWithLabel(NodeId v,
                                                      Symbol a) const {
  auto edges = OutEdges(v);
  auto lo = std::lower_bound(
      edges.begin(), edges.end(), a,
      [](const LabeledEdge& e, Symbol sym) { return e.label < sym; });
  auto hi = std::upper_bound(
      edges.begin(), edges.end(), a,
      [](Symbol sym, const LabeledEdge& e) { return sym < e.label; });
  return {edges.data() + (lo - edges.begin()), static_cast<size_t>(hi - lo)};
}

NodeId Graph::FindNodeByName(std::string_view name) const {
  for (NodeId v = 0; v < num_nodes(); ++v) {
    if (names_[v] == name) return v;
  }
  return num_nodes();
}

bool Graph::HasPathFrom(NodeId from, const Word& word) const {
  std::vector<NodeId> current{from};
  std::vector<bool> in_next(num_nodes(), false);
  for (Symbol a : word) {
    std::vector<NodeId> next;
    for (NodeId v : current) {
      for (const LabeledEdge& e : OutEdgesWithLabel(v, a)) {
        if (!in_next[e.node]) {
          in_next[e.node] = true;
          next.push_back(e.node);
        }
      }
    }
    if (next.empty()) return false;
    for (NodeId v : next) in_next[v] = false;
    current = std::move(next);
  }
  return true;
}

bool Graph::HasPathBetween(NodeId from, NodeId to, const Word& word) const {
  std::vector<NodeId> current{from};
  std::vector<bool> in_next(num_nodes(), false);
  for (Symbol a : word) {
    std::vector<NodeId> next;
    for (NodeId v : current) {
      for (const LabeledEdge& e : OutEdgesWithLabel(v, a)) {
        if (!in_next[e.node]) {
          in_next[e.node] = true;
          next.push_back(e.node);
        }
      }
    }
    if (next.empty()) return false;
    for (NodeId v : next) in_next[v] = false;
    current = std::move(next);
  }
  return std::find(current.begin(), current.end(), to) != current.end();
}

NodeId GraphBuilder::AddNode(std::string_view name) {
  NodeId id = static_cast<NodeId>(names_.size());
  names_.emplace_back(name.empty() ? "v" + std::to_string(id)
                                   : std::string(name));
  return id;
}

NodeId GraphBuilder::AddNodes(uint32_t count) {
  NodeId first = static_cast<NodeId>(names_.size());
  for (uint32_t i = 0; i < count; ++i) AddNode();
  return first;
}

void GraphBuilder::InternLabels(const std::vector<std::string>& labels) {
  for (const auto& label : labels) alphabet_.Intern(label);
}

void GraphBuilder::AddEdge(NodeId src, Symbol label, NodeId dst) {
  RPQ_CHECK_LT(src, names_.size());
  RPQ_CHECK_LT(dst, names_.size());
  RPQ_CHECK_LT(label, alphabet_.size());
  edges_.push_back(RawEdge{src, label, dst});
}

Graph GraphBuilder::Build() {
  Graph graph;
  graph.alphabet_ = std::move(alphabet_);
  graph.names_ = std::move(names_);
  const uint32_t n = static_cast<uint32_t>(graph.names_.size());

  // Deduplicate edges.
  std::sort(edges_.begin(), edges_.end(),
            [](const RawEdge& a, const RawEdge& b) {
              if (a.src != b.src) return a.src < b.src;
              if (a.label != b.label) return a.label < b.label;
              return a.dst < b.dst;
            });
  edges_.erase(std::unique(edges_.begin(), edges_.end(),
                           [](const RawEdge& a, const RawEdge& b) {
                             return a.src == b.src && a.label == b.label &&
                                    a.dst == b.dst;
                           }),
               edges_.end());

  // Forward CSR (edges_ already sorted by (src, label, dst)).
  graph.out_offsets_.assign(n + 1, 0);
  for (const RawEdge& e : edges_) ++graph.out_offsets_[e.src + 1];
  for (uint32_t v = 0; v < n; ++v) {
    graph.out_offsets_[v + 1] += graph.out_offsets_[v];
  }
  graph.out_edges_.reserve(edges_.size());
  for (const RawEdge& e : edges_) {
    graph.out_edges_.push_back(LabeledEdge{e.label, e.dst});
  }

  // Reverse CSR, sorted by (dst, label, src).
  std::sort(edges_.begin(), edges_.end(),
            [](const RawEdge& a, const RawEdge& b) {
              if (a.dst != b.dst) return a.dst < b.dst;
              if (a.label != b.label) return a.label < b.label;
              return a.src < b.src;
            });
  graph.in_offsets_.assign(n + 1, 0);
  for (const RawEdge& e : edges_) ++graph.in_offsets_[e.dst + 1];
  for (uint32_t v = 0; v < n; ++v) {
    graph.in_offsets_[v + 1] += graph.in_offsets_[v];
  }
  graph.in_edges_.reserve(edges_.size());
  for (const RawEdge& e : edges_) {
    graph.in_edges_.push_back(LabeledEdge{e.label, e.src});
  }

  // Label-grouped CSR over both directions. The adjacency arrays above are
  // sorted by (node, label, endpoint), so each (node, label) run is already
  // contiguous; this pass just records run boundaries and strips the labels
  // into flat endpoint arrays for dense iteration.
  RPQ_CHECK_LE(edges_.size(), static_cast<size_t>(UINT32_MAX));
  const uint32_t sigma = graph.alphabet_.size();
  const size_t cells = static_cast<size_t>(n) * sigma;
  auto build_label_csr = [&](const std::vector<size_t>& node_offsets,
                             const std::vector<LabeledEdge>& edges,
                             std::vector<uint32_t>* label_offsets,
                             std::vector<NodeId>* endpoints) {
    label_offsets->assign(cells + 1, 0);
    for (uint32_t v = 0; v < n; ++v) {
      for (size_t i = node_offsets[v]; i < node_offsets[v + 1]; ++i) {
        ++(*label_offsets)[static_cast<size_t>(v) * sigma + edges[i].label + 1];
      }
    }
    for (size_t c = 0; c < cells; ++c) {
      (*label_offsets)[c + 1] += (*label_offsets)[c];
    }
    endpoints->reserve(edges.size());
    for (const LabeledEdge& e : edges) endpoints->push_back(e.node);
  };
  build_label_csr(graph.out_offsets_, graph.out_edges_,
                  &graph.out_label_offsets_, &graph.out_targets_);
  build_label_csr(graph.in_offsets_, graph.in_edges_,
                  &graph.in_label_offsets_, &graph.in_sources_);

  edges_.clear();
  return graph;
}

}  // namespace rpqlearn
