#include "graph/dynamic.h"

#include <vector>

namespace rpqlearn {

void DynamicGraph::MaintainSharding(uint32_t num_shards) {
  sharded_.emplace(ShardedGraph::Partition(graph_, num_shards));
}

void DynamicGraph::MaintainCondensation() {
  condensed_.emplace(CondensedGraph::Build(graph_));
}

void DynamicGraph::MaintainCondensation(std::span<const Symbol> labels) {
  condensed_.emplace(CondensedGraph::Build(graph_, labels));
}

StatusOr<MaterializedQuery*> DynamicGraph::Materialize(
    const Dfa& query, std::span<const NodeId> sources,
    const EvalOptions& options) {
  StatusOr<std::unique_ptr<MaterializedQuery>> created =
      MaterializedQuery::Create(graph_, query, sources, options);
  if (!created.ok()) return created.status();
  MaterializedQuery* raw = created->get();
  materialized_.push_back(std::move(*created));
  return raw;
}

StatusOr<MaterializedMonadic*> DynamicGraph::MaterializeMonadic(
    const Dfa& query, const EvalOptions& options) {
  StatusOr<std::unique_ptr<MaterializedMonadic>> created =
      MaterializedMonadic::Create(graph_, query, options);
  if (!created.ok()) return created.status();
  MaterializedMonadic* raw = created->get();
  materialized_.push_back(std::move(*created));
  return raw;
}

bool DynamicGraph::InsertEdge(NodeId src, Symbol a, NodeId dst) {
  if (!graph_.InsertEdge(src, a, dst)) {
    ++stats_.rejected_updates;
    return false;
  }
  ++stats_.inserts;
  ApplyToSnapshots(a, src, dst, /*inserted=*/true);
  for (const auto& view : materialized_) view->OnInsertEdge(src, a, dst);
  MaybeAutoCompact();
  return true;
}

bool DynamicGraph::DeleteEdge(NodeId src, Symbol a, NodeId dst) {
  if (!graph_.DeleteEdge(src, a, dst)) {
    ++stats_.rejected_updates;
    return false;
  }
  ++stats_.deletes;
  ApplyToSnapshots(a, src, dst, /*inserted=*/false);
  for (const auto& view : materialized_) view->OnDeleteEdge(src, a, dst);
  MaybeAutoCompact();
  return true;
}

void DynamicGraph::MaybeAutoCompact() {
  if (auto_compact_threshold_ == 0) return;
  if (graph_.num_pending_deltas() < auto_compact_threshold_) return;
  Compact();
  ++stats_.auto_compactions;
}

void DynamicGraph::ApplyToSnapshots(Symbol a, NodeId src, NodeId dst,
                                    bool inserted) {
  if (sharded_) {
    const bool same_shard = sharded_->ShardOf(src) == sharded_->ShardOf(dst);
    sharded_->ApplyEdgeUpdate(graph_, a, src, dst, inserted);
    if (same_shard) {
      ++stats_.shard_same_shard_updates;
    } else {
      ++stats_.shard_cross_shard_updates;
    }
  }
  if (condensed_) {
    switch (condensed_->ApplyEdgeUpdate(graph_, a, src, dst, inserted)) {
      case CondenseRepair::kUntouchedLabel:
        ++stats_.condense_untouched_labels;
        break;
      case CondenseRepair::kNoStructuralChange:
        ++stats_.condense_no_structural_change;
        break;
      case CondenseRepair::kDagRebuilt:
        ++stats_.condense_dag_rebuilds;
        break;
      case CondenseRepair::kLabelRetarjaned:
        ++stats_.condense_retarjans;
        break;
    }
  }
}

void DynamicGraph::Compact() {
  graph_.Compact();
  ++stats_.compactions;
  if (sharded_) {
    sharded_.emplace(ShardedGraph::Partition(graph_, sharded_->num_shards()));
  }
  for (const auto& view : materialized_) view->OnCompact();
}

EvalOptions DynamicGraph::WithCaches(EvalOptions options) const {
  if (options.sharded_cache == nullptr && sharded_) {
    options.sharded_cache = &*sharded_;
  }
  if (options.condensed_cache == nullptr && condensed_) {
    options.condensed_cache = &*condensed_;
  }
  return options;
}

}  // namespace rpqlearn
