#ifndef RPQLEARN_GRAPH_DOT_EXPORT_H_
#define RPQLEARN_GRAPH_DOT_EXPORT_H_

#include <string>

#include "automata/dfa.h"
#include "graph/graph.h"
#include "learn/sample.h"

namespace rpqlearn {

/// Graphviz rendering of a graph database; positive example nodes are drawn
/// green, negatives red (the visualization step of the interactive scenario,
/// Fig. 9 step 4). Pass an empty sample for a plain rendering.
std::string GraphToDot(const Graph& graph, const Sample& sample = {});

/// Graphviz rendering of a query DFA (double circles for accepting states),
/// labels taken from `alphabet`.
std::string DfaToDot(const Dfa& dfa, const Alphabet& alphabet);

}  // namespace rpqlearn

#endif  // RPQLEARN_GRAPH_DOT_EXPORT_H_
