#include "graph/io.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "util/string_util.h"

namespace rpqlearn {

StatusOr<Graph> ReadGraphText(std::istream& in) {
  struct PendingEdge {
    uint32_t src;
    std::string label;
    uint32_t dst;
  };
  std::vector<PendingEdge> edges;
  std::unordered_map<uint32_t, std::string> names;
  uint32_t max_node = 0;
  bool any_node = false;

  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    std::istringstream fields{std::string(stripped)};
    std::string first;
    fields >> first;
    if (first == "node") {
      uint32_t id;
      std::string name;
      if (!(fields >> id >> name)) {
        return Status::InvalidArgument("bad node line " +
                                       std::to_string(line_number));
      }
      names[id] = name;
      max_node = std::max(max_node, id);
      any_node = true;
      continue;
    }
    uint32_t src;
    std::string label;
    uint32_t dst;
    std::istringstream edge_fields{std::string(stripped)};
    if (!(edge_fields >> src >> label >> dst)) {
      return Status::InvalidArgument("bad edge line " +
                                     std::to_string(line_number));
    }
    edges.push_back(PendingEdge{src, std::move(label), dst});
    max_node = std::max(max_node, std::max(src, dst));
    any_node = true;
  }

  GraphBuilder builder;
  if (any_node) {
    for (uint32_t v = 0; v <= max_node; ++v) {
      auto it = names.find(v);
      builder.AddNode(it == names.end() ? "" : it->second);
    }
  }
  for (const PendingEdge& e : edges) {
    builder.AddEdge(e.src, e.label, e.dst);
  }
  return builder.Build();
}

void WriteGraphText(const Graph& graph, std::ostream& out) {
  out << "# rpqlearn graph: " << graph.num_nodes() << " nodes, "
      << graph.num_edges() << " edges\n";
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    out << "node " << v << " " << graph.NodeName(v) << "\n";
  }
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    for (const LabeledEdge& e : graph.OutEdges(v)) {
      out << v << " " << graph.alphabet().Name(e.label) << " " << e.node
          << "\n";
    }
  }
}

StatusOr<Graph> LoadGraphFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  return ReadGraphText(in);
}

Status SaveGraphFile(const Graph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::InvalidArgument("cannot write " + path);
  WriteGraphText(graph, out);
  return Status::Ok();
}

}  // namespace rpqlearn
