#include "graph/io.h"

#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/string_util.h"

namespace rpqlearn {

StatusOr<Graph> ReadGraphText(std::istream& in) {
  struct PendingEdge {
    uint32_t src;
    std::string label;
    uint32_t dst;
  };
  std::vector<PendingEdge> edges;
  std::unordered_map<uint32_t, std::string> names;
  uint32_t max_node = 0;
  bool any_node = false;

  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    std::istringstream fields{std::string(stripped)};
    std::string first;
    fields >> first;
    if (first == "node") {
      uint32_t id;
      std::string name;
      if (!(fields >> id >> name)) {
        return Status::InvalidArgument("bad node line " +
                                       std::to_string(line_number));
      }
      names[id] = name;
      max_node = std::max(max_node, id);
      any_node = true;
      continue;
    }
    uint32_t src;
    std::string label;
    uint32_t dst;
    std::istringstream edge_fields{std::string(stripped)};
    if (!(edge_fields >> src >> label >> dst)) {
      return Status::InvalidArgument("bad edge line " +
                                     std::to_string(line_number));
    }
    edges.push_back(PendingEdge{src, std::move(label), dst});
    max_node = std::max(max_node, std::max(src, dst));
    any_node = true;
  }

  GraphBuilder builder;
  if (any_node) {
    for (uint32_t v = 0; v <= max_node; ++v) {
      auto it = names.find(v);
      builder.AddNode(it == names.end() ? "" : it->second);
    }
  }
  for (const PendingEdge& e : edges) {
    builder.AddEdge(e.src, e.label, e.dst);
  }
  return builder.Build();
}

void WriteGraphText(const Graph& graph, std::ostream& out) {
  out << "# rpqlearn graph: " << graph.num_nodes() << " nodes, "
      << graph.num_edges() << " edges\n";
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    out << "node " << v << " " << graph.NodeName(v) << "\n";
  }
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    for (const LabeledEdge& e : graph.OutEdges(v)) {
      out << v << " " << graph.alphabet().Name(e.label) << " " << e.node
          << "\n";
    }
  }
}

namespace {

/// Parses a full non-negative integer node id; rejects partial matches
/// ("12x"), empty fields, and values outside NodeId range.
bool ParseNodeId(std::string_view field, uint32_t* out) {
  if (field.empty()) return false;
  uint64_t value = 0;
  for (char c : field) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
    if (value > UINT32_MAX) return false;
  }
  *out = static_cast<uint32_t>(value);
  return true;
}

/// Splits one edge-list row into trimmed fields: on commas when the row
/// contains one (CSV), otherwise on runs of whitespace.
std::vector<std::string_view> SplitEdgeRow(std::string_view row,
                                           std::string* csv_storage) {
  std::vector<std::string_view> fields;
  if (row.find(',') != std::string_view::npos) {
    *csv_storage = std::string(row);
    std::string_view rest = *csv_storage;
    while (true) {
      const size_t comma = rest.find(',');
      fields.push_back(StripWhitespace(rest.substr(0, comma)));
      if (comma == std::string_view::npos) break;
      rest = rest.substr(comma + 1);
    }
    return fields;
  }
  size_t i = 0;
  while (i < row.size()) {
    while (i < row.size() && (row[i] == ' ' || row[i] == '\t')) ++i;
    if (i >= row.size()) break;
    const size_t begin = i;
    while (i < row.size() && row[i] != ' ' && row[i] != '\t') ++i;
    fields.push_back(row.substr(begin, i - begin));
  }
  return fields;
}

}  // namespace

StatusOr<Graph> ReadEdgeList(std::istream& in) {
  struct PendingEdge {
    uint32_t src;
    std::string label;
    uint32_t dst;
  };
  std::vector<PendingEdge> edges;
  uint32_t max_node = 0;
  bool any_edge = false;

  std::string line;
  std::string csv_storage;
  size_t row_number = 0;
  while (std::getline(in, line)) {
    ++row_number;
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    const std::vector<std::string_view> fields =
        SplitEdgeRow(stripped, &csv_storage);
    const auto bad_row = [&](const char* why) {
      return Status::InvalidArgument("bad edge-list row " +
                                     std::to_string(row_number) + " (" + why +
                                     "): " + std::string(stripped));
    };
    if (fields.size() != 3) return bad_row("expected src, label, dst");
    uint32_t src;
    uint32_t dst;
    if (!ParseNodeId(fields[0], &src)) return bad_row("bad source id");
    if (!ParseNodeId(fields[2], &dst)) return bad_row("bad destination id");
    if (fields[1].empty()) return bad_row("empty label");
    edges.push_back(PendingEdge{src, std::string(fields[1]), dst});
    max_node = std::max(max_node, std::max(src, dst));
    any_edge = true;
  }
  if (in.bad()) return Status::Internal("edge-list stream read error");

  GraphBuilder builder;
  if (any_edge) builder.AddNodes(max_node + 1);
  for (const PendingEdge& e : edges) {
    builder.AddEdge(e.src, e.label, e.dst);
  }
  return builder.Build();
}

StatusOr<Graph> LoadGraphFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  return ReadGraphText(in);
}

StatusOr<Graph> LoadEdgeList(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  return ReadEdgeList(in);
}

Status SaveGraphFile(const Graph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::InvalidArgument("cannot write " + path);
  WriteGraphText(graph, out);
  return Status::Ok();
}

void WriteEdgeList(const Graph& graph, std::ostream& out) {
  // Label-major emission: the reader interns labels in first-seen order, so
  // walking symbols by id makes the round-tripped alphabet id-identical.
  out << "# " << graph.num_nodes() << " nodes, " << graph.num_edges()
      << " edges, " << graph.num_symbols() << " labels\n";
  for (Symbol a = 0; a < graph.num_symbols(); ++a) {
    const std::string& name = graph.alphabet().Name(a);
    for (NodeId v = 0; v < graph.num_nodes(); ++v) {
      for (NodeId dst : graph.OutNeighbors(v, a)) {
        out << v << ' ' << name << ' ' << dst << '\n';
      }
    }
  }
}

Status SaveEdgeList(const Graph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::InvalidArgument("cannot write " + path);
  WriteEdgeList(graph, out);
  return Status::Ok();
}

}  // namespace rpqlearn
