#include "graph/dot_export.h"

#include <algorithm>
#include <sstream>

namespace rpqlearn {

std::string GraphToDot(const Graph& graph, const Sample& sample) {
  std::ostringstream out;
  out << "digraph G {\n  rankdir=LR;\n  node [shape=circle];\n";
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    out << "  n" << v << " [label=\"" << graph.NodeName(v) << "\"";
    if (std::find(sample.positive.begin(), sample.positive.end(), v) !=
        sample.positive.end()) {
      out << ", style=filled, fillcolor=palegreen, xlabel=\"+\"";
    } else if (std::find(sample.negative.begin(), sample.negative.end(),
                         v) != sample.negative.end()) {
      out << ", style=filled, fillcolor=lightcoral, xlabel=\"-\"";
    }
    out << "];\n";
  }
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    for (const LabeledEdge& e : graph.OutEdges(v)) {
      out << "  n" << v << " -> n" << e.node << " [label=\""
          << graph.alphabet().Name(e.label) << "\"];\n";
    }
  }
  out << "}\n";
  return out.str();
}

std::string DfaToDot(const Dfa& dfa, const Alphabet& alphabet) {
  std::ostringstream out;
  out << "digraph A {\n  rankdir=LR;\n  start [shape=point];\n";
  for (StateId s = 0; s < dfa.num_states(); ++s) {
    out << "  q" << s << " [shape="
        << (dfa.IsAccepting(s) ? "doublecircle" : "circle") << "];\n";
  }
  out << "  start -> q" << dfa.initial_state() << ";\n";
  for (StateId s = 0; s < dfa.num_states(); ++s) {
    for (Symbol a = 0; a < dfa.num_symbols(); ++a) {
      StateId t = dfa.Next(s, a);
      if (t == kNoState) continue;
      out << "  q" << s << " -> q" << t << " [label=\"" << alphabet.Name(a)
          << "\"];\n";
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace rpqlearn
