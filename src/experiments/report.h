#ifndef RPQLEARN_EXPERIMENTS_REPORT_H_
#define RPQLEARN_EXPERIMENTS_REPORT_H_

#include <string>
#include <vector>

namespace rpqlearn {

/// Minimal fixed-width table printer for the bench binaries that regenerate
/// the paper's tables and figure series on stdout.
class TableReport {
 public:
  explicit TableReport(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  /// Renders with column widths fitted to content.
  std::string ToString() const;

  /// Formats a double with `digits` decimals.
  static std::string Num(double value, int digits = 3);
  /// Formats a percentage ("12.34%").
  static std::string Percent(double fraction, int digits = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rpqlearn

#endif  // RPQLEARN_EXPERIMENTS_REPORT_H_
