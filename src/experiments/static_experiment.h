#ifndef RPQLEARN_EXPERIMENTS_STATIC_EXPERIMENT_H_
#define RPQLEARN_EXPERIMENTS_STATIC_EXPERIMENT_H_

#include <vector>

#include "automata/dfa.h"
#include "graph/graph.h"
#include "learn/learner.h"
#include "query/eval.h"
#include "util/status.h"

namespace rpqlearn {

/// One point of the static-experiment curves (Figs. 11 and 12): randomly
/// label a fraction of the nodes consistently with the goal query, learn,
/// and score the learned query as a classifier against the goal.
struct StaticPoint {
  double label_fraction = 0.0;
  double f1_mean = 0.0;
  double time_mean_seconds = 0.0;
  double abstain_rate = 0.0;  ///< fraction of trials where learner was null
  uint32_t max_k_used = 0;
};

/// Configuration of a sweep over label fractions.
struct StaticSweepOptions {
  std::vector<double> fractions = {0.005, 0.01, 0.02, 0.05,
                                   0.07,  0.10, 0.15, 0.20};
  int trials = 3;
  uint64_t seed = 1;
  LearnerOptions learner;
  /// Evaluation knobs (thread count, direction-optimizing mode/threshold,
  /// node-range shard count) for scoring learned queries against the goal.
  /// An ExecContext in `eval.exec` governs the whole sweep (it is also
  /// handed to the learner when `learner.exec` is unset); its trip Status —
  /// like any evaluation failure — propagates out of the sweep instead of
  /// aborting the process.
  EvalOptions eval;
};

/// Runs the Sec. 5.2 static experiment for one goal query. Returns the trip
/// or validation Status when an evaluation or learner run fails mid-sweep.
StatusOr<std::vector<StaticPoint>> RunStaticSweep(
    const Graph& graph, const Dfa& goal, const StaticSweepOptions& options);

/// The "labels needed for F1 = 1 without interactions" column of Table 2:
/// grows the random labeled fraction by `step` until the learned query
/// reaches F1 = 1; returns the fraction (or max_fraction if never reached).
/// Shares RunStaticSweep's failure contract.
StatusOr<double> LabelsNeededForPerfectF1(const Graph& graph, const Dfa& goal,
                                          double step, double max_fraction,
                                          uint64_t seed,
                                          const LearnerOptions& learner,
                                          const EvalOptions& eval = {});

}  // namespace rpqlearn

#endif  // RPQLEARN_EXPERIMENTS_STATIC_EXPERIMENT_H_
