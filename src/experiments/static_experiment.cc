#include "experiments/static_experiment.h"

#include <algorithm>

#include "learn/incremental.h"
#include "learn/sample.h"
#include "query/engine.h"
#include "query/eval.h"
#include "query/metrics.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/timer.h"

namespace rpqlearn {
namespace {

/// Monadic evaluation through the Engine facade: goal sets and recurring
/// hypotheses hit the plan cache and each plan's retained fixed point.
/// Failures — misconfiguration or an ExecContext trip — propagate to the
/// caller, which reports them with a nonzero exit rather than aborting the
/// process.
StatusOr<BitVector> EvalGoalSet(const Engine& engine, const Dfa& query) {
  StatusOr<Engine::PlanPtr> plan = engine.Plan(query);
  if (!plan.ok()) return plan.status();
  StatusOr<MonadicNodes> nodes = (*plan)->RunMonadic();
  if (!nodes.ok()) return nodes.status();
  return **nodes;
}

/// The paper's static sampling protocol (Sec. 5.2): positives are random
/// nodes *selected by the goal*, negatives random nodes *not selected*,
/// each in proportion to the fraction of labeled nodes — with at least one
/// positive (the paper kept only queries selecting ≥ 1 node precisely "to
/// obtain at least one positive example for learning").
Sample RandomSample(const Graph& graph, const BitVector& goal,
                    double fraction, Rng* rng) {
  std::vector<NodeId> selected_pool;
  std::vector<NodeId> rejected_pool;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    (goal.Test(v) ? selected_pool : rejected_pool).push_back(v);
  }
  rng->Shuffle(&selected_pool);
  rng->Shuffle(&rejected_pool);

  size_t num_pos = static_cast<size_t>(fraction * selected_pool.size() + 0.5);
  if (!selected_pool.empty()) num_pos = std::max<size_t>(num_pos, 1);
  num_pos = std::min(num_pos, selected_pool.size());
  size_t num_neg = static_cast<size_t>(fraction * rejected_pool.size() + 0.5);
  num_neg = std::min(num_neg, rejected_pool.size());

  Sample sample;
  sample.positive.assign(selected_pool.begin(),
                         selected_pool.begin() + num_pos);
  sample.negative.assign(rejected_pool.begin(),
                         rejected_pool.begin() + num_neg);
  return sample;
}

}  // namespace

StatusOr<std::vector<StaticPoint>> RunStaticSweep(
    const Graph& graph, const Dfa& goal, const StaticSweepOptions& options) {
  EngineOptions engine_options;
  engine_options.eval = options.eval;
  Engine engine(graph, engine_options);
  StatusOr<BitVector> goal_or = EvalGoalSet(engine, goal);
  if (!goal_or.ok()) return goal_or.status();
  const BitVector& goal_set = *goal_or;
  LearnerOptions learner_options = options.learner;
  if (learner_options.exec == nullptr) {
    learner_options.exec = options.eval.exec;
  }
  Rng rng(options.seed);
  std::vector<StaticPoint> points;
  for (double fraction : options.fractions) {
    StaticPoint point;
    point.label_fraction = fraction;
    int abstains = 0;
    for (int trial = 0; trial < options.trials; ++trial) {
      Sample sample = RandomSample(graph, goal_set, fraction, &rng);
      WallTimer timer;
      LearnOutcome outcome = LearnPathQuery(graph, sample, learner_options);
      point.time_mean_seconds += timer.ElapsedSeconds();
      if (!outcome.status.ok()) return outcome.status;
      if (outcome.is_null) {
        ++abstains;
        continue;
      }
      point.max_k_used = std::max(point.max_k_used, outcome.stats.k_used);
      StatusOr<BitVector> selected = EvalGoalSet(engine, outcome.query);
      if (!selected.ok()) return selected.status();
      point.f1_mean += ComputeMetrics(*selected, goal_set).f1;
    }
    int successes = options.trials - abstains;
    point.f1_mean = successes > 0 ? point.f1_mean / successes : 0.0;
    point.time_mean_seconds /= options.trials;
    point.abstain_rate = static_cast<double>(abstains) / options.trials;
    points.push_back(point);
  }
  return points;
}

StatusOr<double> LabelsNeededForPerfectF1(const Graph& graph,
                                          const Dfa& goal, double step,
                                          double max_fraction, uint64_t seed,
                                          const LearnerOptions& learner,
                                          const EvalOptions& eval) {
  EngineOptions engine_options;
  engine_options.eval = eval;
  Engine engine(graph, engine_options);
  StatusOr<BitVector> goal_or = EvalGoalSet(engine, goal);
  if (!goal_or.ok()) return goal_or.status();
  const BitVector& goal_set = *goal_or;
  LearnerOptions learner_options = learner;
  if (learner_options.exec == nullptr) learner_options.exec = eval.exec;
  Rng rng(seed);
  // Incrementally extend fixed orderings of both pools so successive
  // fractions nest (same stratified protocol as RandomSample).
  std::vector<NodeId> selected_pool;
  std::vector<NodeId> rejected_pool;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    (goal_set.Test(v) ? selected_pool : rejected_pool).push_back(v);
  }
  rng.Shuffle(&selected_pool);
  rng.Shuffle(&rejected_pool);

  // Successive fractions nest, so the incremental learner's SCP and
  // coverage caches carry over between steps.
  IncrementalLearner incremental(graph, learner_options);
  size_t added_pos = 0;
  size_t added_neg = 0;

  for (double fraction = step; fraction <= max_fraction + 1e-9;
       fraction += step) {
    size_t num_pos =
        static_cast<size_t>(fraction * selected_pool.size() + 0.5);
    if (!selected_pool.empty()) num_pos = std::max<size_t>(num_pos, 1);
    num_pos = std::min(num_pos, selected_pool.size());
    size_t num_neg =
        static_cast<size_t>(fraction * rejected_pool.size() + 0.5);
    num_neg = std::min(num_neg, rejected_pool.size());
    while (added_pos < num_pos) {
      incremental.AddPositive(selected_pool[added_pos++]);
    }
    while (added_neg < num_neg) {
      incremental.AddNegative(rejected_pool[added_neg++]);
    }
    LearnOutcome outcome = incremental.Learn();
    if (!outcome.status.ok()) return outcome.status;
    if (outcome.is_null) continue;
    StatusOr<BitVector> selected = EvalGoalSet(engine, outcome.query);
    if (!selected.ok()) return selected.status();
    if (ComputeMetrics(*selected, goal_set).f1 == 1.0) return fraction;
  }
  return max_fraction;
}

}  // namespace rpqlearn
