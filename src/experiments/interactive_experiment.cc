#include "experiments/interactive_experiment.h"

#include "interact/oracle.h"

namespace rpqlearn {

StatusOr<InteractiveSummary> RunInteractiveExperiment(
    const Graph& graph, const Dfa& goal, StrategyKind strategy, uint64_t seed,
    size_t max_interactions, const EvalOptions& eval) {
  StatusOr<Oracle> oracle = Oracle::TryFromQuery(graph, goal, eval);
  if (!oracle.ok()) return oracle.status();
  SessionOptions options;
  options.strategy = strategy;
  options.seed = seed;
  options.max_interactions = max_interactions;
  options.eval = eval;

  SessionResult session = RunInteractiveSession(graph, *oracle, options);
  if (!session.status.ok()) return session.status;

  InteractiveSummary summary;
  summary.strategy =
      strategy == StrategyKind::kRandom ? "kR" : "kS";
  summary.interactions = session.interactions.size();
  summary.label_percent = 100.0 * session.label_fraction;
  summary.reached_goal = session.reached_goal;
  summary.final_k = session.final_k;
  double total = 0.0;
  for (const InteractionRecord& r : session.interactions) total += r.seconds;
  summary.mean_seconds =
      session.interactions.empty() ? 0.0
                                   : total / session.interactions.size();
  return summary;
}

}  // namespace rpqlearn
