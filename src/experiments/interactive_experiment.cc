#include "experiments/interactive_experiment.h"

#include "interact/oracle.h"
#include "query/engine.h"

namespace rpqlearn {

StatusOr<InteractiveSummary> RunInteractiveExperiment(
    const Graph& graph, const Dfa& goal, StrategyKind strategy, uint64_t seed,
    size_t max_interactions, const EvalOptions& eval) {
  // The goal set is evaluated through the Engine facade (the session builds
  // its own engine for the per-interaction hypothesis evaluations).
  EngineOptions engine_options;
  engine_options.eval = eval;
  Engine engine(graph, engine_options);
  StatusOr<Engine::PlanPtr> goal_plan = engine.Plan(goal);
  if (!goal_plan.ok()) return goal_plan.status();
  StatusOr<MonadicNodes> goal_set = (*goal_plan)->RunMonadic();
  if (!goal_set.ok()) return goal_set.status();
  StatusOr<Oracle> oracle = Oracle(**goal_set);
  SessionOptions options;
  options.strategy = strategy;
  options.seed = seed;
  options.max_interactions = max_interactions;
  options.eval = eval;

  SessionResult session = RunInteractiveSession(graph, *oracle, options);
  if (!session.status.ok()) return session.status;

  InteractiveSummary summary;
  summary.strategy =
      strategy == StrategyKind::kRandom ? "kR" : "kS";
  summary.interactions = session.interactions.size();
  summary.label_percent = 100.0 * session.label_fraction;
  summary.reached_goal = session.reached_goal;
  summary.final_k = session.final_k;
  double total = 0.0;
  for (const InteractionRecord& r : session.interactions) total += r.seconds;
  summary.mean_seconds =
      session.interactions.empty() ? 0.0
                                   : total / session.interactions.size();
  return summary;
}

}  // namespace rpqlearn
