#ifndef RPQLEARN_EXPERIMENTS_INTERACTIVE_EXPERIMENT_H_
#define RPQLEARN_EXPERIMENTS_INTERACTIVE_EXPERIMENT_H_

#include <string>

#include "automata/dfa.h"
#include "graph/graph.h"
#include "interact/session.h"
#include "util/status.h"

namespace rpqlearn {

/// One row fragment of Table 2: an interactive run of a goal query with a
/// given strategy.
struct InteractiveSummary {
  std::string strategy;               ///< "kR" or "kS"
  size_t interactions = 0;            ///< labels provided
  double label_percent = 0.0;         ///< 100 · labels / |V|
  double mean_seconds = 0.0;          ///< mean time between interactions
  bool reached_goal = false;          ///< F1 = 1 achieved
  uint32_t final_k = 0;
};

/// Runs one interactive session against `goal` and summarizes it. `eval`
/// carries the evaluation knobs (thread count, direction-optimizing
/// mode/threshold) for the oracle's goal set and every per-interaction F1
/// scoring pass. An ExecContext in `eval.exec` bounds the whole run; its
/// trip Status (and any other evaluation failure) propagates instead of
/// aborting the process.
StatusOr<InteractiveSummary> RunInteractiveExperiment(
    const Graph& graph, const Dfa& goal, StrategyKind strategy, uint64_t seed,
    size_t max_interactions = 5000, const EvalOptions& eval = {});

}  // namespace rpqlearn

#endif  // RPQLEARN_EXPERIMENTS_INTERACTIVE_EXPERIMENT_H_
