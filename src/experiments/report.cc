#include "experiments/report.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/logging.h"

namespace rpqlearn {

TableReport::TableReport(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TableReport::AddRow(std::vector<std::string> cells) {
  RPQ_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TableReport::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << "| " << row[c] << std::string(widths[c] - row[c].size(), ' ')
          << " ";
    }
    out << "|\n";
  };
  print_row(headers_);
  for (size_t c = 0; c < headers_.size(); ++c) {
    out << "|" << std::string(widths[c] + 2, '-');
  }
  out << "|\n";
  for (const auto& row : rows_) print_row(row);
  return out.str();
}

std::string TableReport::Num(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
  return buffer;
}

std::string TableReport::Percent(double fraction, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f%%", digits, fraction * 100.0);
  return buffer;
}

}  // namespace rpqlearn
