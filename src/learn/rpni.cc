#include "learn/rpni.h"

#include <algorithm>
#include <set>

#include "automata/fold.h"
#include "automata/pta.h"
#include "util/logging.h"

namespace rpqlearn {

Dfa RpniGeneralize(const Dfa& pta,
                   const std::function<bool(const Dfa&)>& is_consistent,
                   RpniStats* stats) {
  RpniStats local_stats;
  Dfa current = pta;
  std::set<StateId> red{current.initial_state()};

  while (true) {
    // Blue states: successors of red states that are not themselves red.
    // State ids follow canonical access-word order (PTA numbering is
    // preserved by FoldMerge's BFS renumbering), so min = canonical least.
    std::set<StateId> blue;
    for (StateId r : red) {
      for (Symbol a = 0; a < current.num_symbols(); ++a) {
        StateId t = current.Next(r, a);
        if (t != kNoState && red.count(t) == 0) blue.insert(t);
      }
    }
    if (blue.empty()) break;
    StateId b = *blue.begin();

    bool merged = false;
    for (StateId r : red) {
      ++local_stats.merges_attempted;
      FoldResult candidate = FoldMerge(current, r, b);
      if (is_consistent(candidate.dfa)) {
        ++local_stats.merges_accepted;
        // Remap red ids into the renumbered quotient.
        std::set<StateId> new_red;
        for (StateId old_r : red) {
          StateId mapped = candidate.old_to_new[old_r];
          RPQ_CHECK(mapped != kNoState);
          new_red.insert(mapped);
        }
        red = std::move(new_red);
        current = std::move(candidate.dfa);
        merged = true;
        break;
      }
    }
    if (!merged) {
      ++local_stats.promotions;
      red.insert(b);
    }
  }
  if (stats != nullptr) *stats = local_stats;
  return current;
}

StatusOr<Dfa> RpniLearnWords(const WordSample& sample, uint32_t num_symbols) {
  Dfa pta = BuildPta(sample.positive, num_symbols);
  for (const Word& w : sample.negative) {
    if (pta.Accepts(w)) {
      return Status::InvalidArgument(
          "inconsistent word sample: a negative word is also positive");
    }
  }
  auto consistent = [&sample](const Dfa& candidate) {
    for (const Word& w : sample.negative) {
      if (candidate.Accepts(w)) return false;
    }
    return true;
  };
  return RpniGeneralize(pta, consistent);
}

}  // namespace rpqlearn
