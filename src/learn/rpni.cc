#include "learn/rpni.h"

#include <algorithm>
#include <set>

#include "automata/fold.h"
#include "automata/pta.h"
#include "util/exec_context.h"
#include "util/logging.h"

namespace rpqlearn {

Dfa RpniGeneralize(const Dfa& pta,
                   const std::function<bool(const Dfa&)>& is_consistent,
                   RpniStats* stats, ExecContext* exec) {
  RpniStats local_stats;
  Dfa current = pta;
  std::set<StateId> red{current.initial_state()};

  while (exec == nullptr || !exec->tripped()) {
    // Blue states: successors of red states that are not themselves red.
    // State ids follow canonical access-word order (PTA numbering is
    // preserved by FoldMerge's BFS renumbering), so min = canonical least.
    std::set<StateId> blue;
    for (StateId r : red) {
      for (Symbol a = 0; a < current.num_symbols(); ++a) {
        StateId t = current.Next(r, a);
        if (t != kNoState && red.count(t) == 0) blue.insert(t);
      }
    }
    if (blue.empty()) break;
    StateId b = *blue.begin();

    bool merged = false;
    for (StateId r : red) {
      // One checkpoint per merge trial: a trial folds and tests a whole
      // candidate automaton, so this is the loop's natural unit of work.
      if (exec != nullptr && !exec->Checkpoint()) break;
      ++local_stats.merges_attempted;
      FoldResult candidate = FoldMerge(current, r, b);
      if (is_consistent(candidate.dfa)) {
        ++local_stats.merges_accepted;
        // Remap red ids into the renumbered quotient.
        std::set<StateId> new_red;
        for (StateId old_r : red) {
          StateId mapped = candidate.old_to_new[old_r];
          RPQ_CHECK(mapped != kNoState);
          new_red.insert(mapped);
        }
        red = std::move(new_red);
        current = std::move(candidate.dfa);
        merged = true;
        break;
      }
    }
    if (!merged) {
      ++local_stats.promotions;
      red.insert(b);
    }
  }
  if (stats != nullptr) *stats = local_stats;
  return current;
}

Dfa RpniGeneralizeOnPartition(const Dfa& pta,
                              const PartitionConsistency& is_consistent,
                              RpniStats* stats, ExecContext* exec) {
  RpniStats local_stats;
  Dfa current = pta;
  MergePartition partition(current);
  std::set<StateId> red{current.initial_state()};

  while (exec == nullptr || !exec->tripped()) {
    // Identical red–blue schedule to RpniGeneralize: the partition is reset
    // to the renumbered quotient after every accepted merge, so blue
    // selection still happens over canonical state ids.
    std::set<StateId> blue;
    for (StateId r : red) {
      for (Symbol a = 0; a < current.num_symbols(); ++a) {
        StateId t = current.Next(r, a);
        if (t != kNoState && red.count(t) == 0) blue.insert(t);
      }
    }
    if (blue.empty()) break;
    StateId b = *blue.begin();

    bool merged = false;
    for (StateId r : red) {
      if (exec != nullptr && !exec->Checkpoint()) break;
      ++local_stats.merges_attempted;
      partition.Fold(r, b);
      if (is_consistent(partition)) {
        ++local_stats.merges_accepted;
        FoldResult candidate = partition.Materialize();
        std::set<StateId> new_red;
        for (StateId old_r : red) {
          StateId mapped = candidate.old_to_new[old_r];
          RPQ_CHECK(mapped != kNoState);
          new_red.insert(mapped);
        }
        red = std::move(new_red);
        current = std::move(candidate.dfa);
        partition.Reset(current);
        merged = true;
        break;
      }
      partition.Rollback();
    }
    if (!merged) {
      ++local_stats.promotions;
      red.insert(b);
    }
  }
  if (stats != nullptr) *stats = local_stats;
  return current;
}

NfaDisjointnessOracle::NfaDisjointnessOracle(const Nfa* nfa) : nfa_(nfa) {
  RPQ_CHECK(!nfa_->has_epsilon_transitions())
      << "NfaDisjointnessOracle requires an ε-free NFA";
}

bool NfaDisjointnessOracle::operator()(const MergePartition& view) const {
  const uint32_t nb = nfa_->num_states();
  const size_t need = static_cast<size_t>(view.base_states()) * nb;
  const bool dense = need <= kDenseStampLimit;
  if (dense) {
    if (stamp_.size() < need) stamp_.assign(need, 0);
    if (++generation_ == 0) {
      // Wrapped: stale stamps from 2^32 trials ago would read as visited.
      std::fill(stamp_.begin(), stamp_.end(), 0);
      generation_ = 1;
    }
  } else {
    sparse_visited_.clear();
  }
  // First visit of a (DFA class, NFA state) product pair.
  auto mark = [&](size_t idx) {
    if (dense) {
      if (stamp_[idx] == generation_) return false;
      stamp_[idx] = generation_;
      return true;
    }
    return sparse_visited_.insert(idx).second;
  };
  stack_.clear();

  const StateId d0 = view.InitialRep();
  const bool d0_accepting = view.IsAcceptingRep(d0);
  for (StateId s0 : nfa_->initial_states()) {
    if (d0_accepting && nfa_->IsAccepting(s0)) return false;  // ε witness
    if (mark(static_cast<size_t>(d0) * nb + s0)) stack_.emplace_back(d0, s0);
  }
  while (!stack_.empty()) {
    auto [d, s] = stack_.back();
    stack_.pop_back();
    for (const auto& [a, t] : nfa_->TransitionsFrom(s)) {
      if (a >= view.num_symbols()) continue;
      const StateId dn = view.NextRep(d, a);
      if (dn == kNoState) continue;
      if (view.IsAcceptingRep(dn) && nfa_->IsAccepting(t)) return false;
      if (mark(static_cast<size_t>(dn) * nb + t)) stack_.emplace_back(dn, t);
    }
  }
  return true;
}

StatusOr<Dfa> RpniLearnWords(const WordSample& sample, uint32_t num_symbols) {
  Dfa pta = BuildPta(sample.positive, num_symbols);
  for (const Word& w : sample.negative) {
    if (pta.Accepts(w)) {
      return Status::InvalidArgument(
          "inconsistent word sample: a negative word is also positive");
    }
  }
  return RpniGeneralizeOnPartition(pta, WordRejectionOracle(&sample.negative));
}

}  // namespace rpqlearn
