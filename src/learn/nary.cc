#include "learn/nary.h"

#include "learn/binary.h"
#include "util/logging.h"

namespace rpqlearn {

NaryOutcome LearnNaryPathQuery(const Graph& graph, const TupleSample& sample,
                               const LearnerOptions& options) {
  NaryOutcome outcome;
  size_t arity = 0;
  for (const auto& t : sample.positive) {
    if (arity == 0) arity = t.size();
    RPQ_CHECK_EQ(t.size(), arity);
  }
  for (const auto& t : sample.negative) {
    if (arity == 0) arity = t.size();
    RPQ_CHECK_EQ(t.size(), arity);
  }
  if (arity < 2) return outcome;

  for (size_t i = 0; i + 1 < arity; ++i) {
    PairSample pairs;
    for (const auto& t : sample.positive) {
      pairs.positive.emplace_back(t[i], t[i + 1]);
    }
    for (const auto& t : sample.negative) {
      pairs.negative.emplace_back(t[i], t[i + 1]);
    }
    LearnOutcome learned = LearnBinaryPathQuery(graph, pairs, options);
    if (learned.is_null) {
      outcome.is_null = true;
      outcome.queries.clear();
      return outcome;
    }
    outcome.queries.push_back(std::move(learned.query));
    outcome.stats.push_back(learned.stats);
  }
  outcome.is_null = false;
  return outcome;
}

}  // namespace rpqlearn
