#include "learn/consistency.h"

#include "automata/inclusion.h"
#include "graph/graph_nfa.h"
#include "learn/coverage.h"
#include "learn/scp.h"

namespace rpqlearn {

StatusOr<bool> IsSampleConsistent(const Graph& graph, const Sample& sample,
                                  size_t max_explored) {
  Nfa negatives = GraphToNfa(graph, sample.negative);
  for (NodeId v : sample.positive) {
    Nfa positive = GraphToNfa(graph, {v});
    StatusOr<InclusionResult> included =
        CheckLanguageInclusion(positive, negatives, max_explored);
    if (!included.ok()) return included.status();
    if (included->included) return false;  // paths(v) ⊆ paths(S−)
  }
  return true;
}

StatusOr<bool> IsSampleConsistentBounded(const Graph& graph,
                                         const Sample& sample, uint32_t k) {
  Nfa negatives = GraphToNfa(graph, sample.negative);
  SubsetCoverage::Options options;
  options.k = k;
  StatusOr<SubsetCoverage> coverage =
      SubsetCoverage::Build(negatives, options);
  if (!coverage.ok()) return coverage.status();
  Nfa graph_nfa = GraphToNfa(graph, {});
  for (NodeId v : sample.positive) {
    StatusOr<ScpResult> scp =
        SmallestConsistentPath(graph_nfa, {v}, coverage.value());
    if (!scp.ok()) return scp.status();
    if (!scp->path.has_value()) return false;
  }
  return true;
}

}  // namespace rpqlearn
