#include "learn/char_sample.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <utility>

#include "automata/word.h"
#include "util/logging.h"

namespace rpqlearn {
namespace {

/// Shortest (canonical) access word per reachable state, BFS with ascending
/// symbols.
std::vector<Word> ShortestAccessWords(const Dfa& dfa) {
  std::vector<Word> access(dfa.num_states());
  std::vector<bool> seen(dfa.num_states(), false);
  std::deque<StateId> queue{dfa.initial_state()};
  seen[dfa.initial_state()] = true;
  while (!queue.empty()) {
    StateId s = queue.front();
    queue.pop_front();
    for (Symbol a = 0; a < dfa.num_symbols(); ++a) {
      StateId t = dfa.Next(s, a);
      if (t == kNoState || seen[t]) continue;
      seen[t] = true;
      access[t] = access[s];
      access[t].push_back(a);
      queue.push_back(t);
    }
  }
  return access;
}

/// Shortest word from each state to acceptance (backward BFS); states with
/// no accepting continuation get no entry (empty optional as flag vector).
std::vector<std::pair<bool, Word>> ShortestTails(const Dfa& dfa) {
  const uint32_t n = dfa.num_states();
  std::vector<std::pair<bool, Word>> tails(n, {false, {}});
  // Repeated relaxation by increasing tail length (n rounds suffice; DFAs
  // here are small characteristic targets).
  for (StateId s = 0; s < n; ++s) {
    if (dfa.IsAccepting(s)) tails[s] = {true, {}};
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (StateId s = 0; s < n; ++s) {
      for (Symbol a = 0; a < dfa.num_symbols(); ++a) {
        StateId t = dfa.Next(s, a);
        if (t == kNoState || !tails[t].first) continue;
        Word candidate;
        candidate.reserve(tails[t].second.size() + 1);
        candidate.push_back(a);
        candidate.insert(candidate.end(), tails[t].second.begin(),
                         tails[t].second.end());
        if (!tails[s].first || CanonicalLess(candidate, tails[s].second)) {
          tails[s] = {true, std::move(candidate)};
          changed = true;
        }
      }
    }
  }
  return tails;
}

/// Shortest suffix distinguishing two states of the completed DFA (exists
/// iff the states are inequivalent; `dfa` must be minimal for that).
Word DistinguishingSuffix(const Dfa& complete, StateId s1, StateId s2) {
  struct Entry {
    StateId a;
    StateId b;
    Word word;
  };
  std::set<std::pair<StateId, StateId>> visited{{s1, s2}};
  std::deque<Entry> queue{{s1, s2, {}}};
  while (!queue.empty()) {
    Entry current = std::move(queue.front());
    queue.pop_front();
    if (complete.IsAccepting(current.a) != complete.IsAccepting(current.b)) {
      return current.word;
    }
    for (Symbol a = 0; a < complete.num_symbols(); ++a) {
      StateId ta = complete.Next(current.a, a);
      StateId tb = complete.Next(current.b, a);
      if (visited.emplace(ta, tb).second) {
        Word next = current.word;
        next.push_back(a);
        queue.push_back(Entry{ta, tb, std::move(next)});
      }
    }
  }
  RPQ_CHECK(false) << "states are equivalent; target DFA not minimal?";
  __builtin_unreachable();
}

}  // namespace

WordSample BuildRpniCharacteristicWords(const Dfa& target_in) {
  const Dfa target = target_in.Trimmed();
  const Dfa complete = target.Completed();
  // After Completed(), the sink (if added) is the last state.
  const bool has_sink = complete.num_states() != target.num_states();
  const StateId sink = has_sink ? complete.num_states() - 1 : kNoState;

  std::vector<Word> access = ShortestAccessWords(target);
  auto tails = ShortestTails(target);

  // Kernel: ε plus every defined one-symbol extension of an access word.
  struct KernelEntry {
    Word word;
    StateId state;  // state in `target` (and `complete`)
  };
  std::vector<KernelEntry> kernel;
  kernel.push_back({Word{}, target.initial_state()});
  for (StateId s = 0; s < target.num_states(); ++s) {
    for (Symbol a = 0; a < target.num_symbols(); ++a) {
      StateId t = target.Next(s, a);
      if (t == kNoState) continue;
      Word w = access[s];
      w.push_back(a);
      kernel.push_back({std::move(w), t});
    }
  }

  std::set<Word, CanonicalWordLess> positive;
  std::set<Word, CanonicalWordLess> negative;

  // Acceptance extension for every kernel word (all states are live in the
  // trimmed target).
  for (const KernelEntry& entry : kernel) {
    RPQ_CHECK(tails[entry.state].first);
    Word w = entry.word;
    const Word& tail = tails[entry.state].second;
    w.insert(w.end(), tail.begin(), tail.end());
    positive.insert(std::move(w));
  }

  // Distinguishing suffixes for every (kernel, access) pair of distinct
  // states, including the pair (kernel word leading into the implicit sink
  // behavior is not needed: kernel states are always defined).
  for (const KernelEntry& entry : kernel) {
    for (StateId s = 0; s < target.num_states(); ++s) {
      if (s == entry.state) continue;
      Word suffix = DistinguishingSuffix(complete, entry.state, s);
      Word u = entry.word;
      u.insert(u.end(), suffix.begin(), suffix.end());
      Word v = access[s];
      v.insert(v.end(), suffix.begin(), suffix.end());
      (target.Accepts(u) ? positive : negative).insert(std::move(u));
      (target.Accepts(v) ? positive : negative).insert(std::move(v));
    }
  }
  (void)sink;

  WordSample sample;
  sample.positive.assign(positive.begin(), positive.end());
  sample.negative.assign(negative.begin(), negative.end());
  return sample;
}

CharacteristicGraphSample BuildCharacteristicGraph(const Dfa& query_in,
                                                   const Alphabet& alphabet) {
  const Dfa query = query_in.Trimmed();
  RPQ_CHECK_LE(query.num_symbols(), alphabet.size());
  CharacteristicGraphSample out;
  GraphBuilder builder;
  std::vector<Symbol> label_ids;
  for (Symbol a = 0; a < query.num_symbols(); ++a) {
    label_ids.push_back(builder.InternLabel(alphabet.Name(a)));
  }

  if (query.IsAccepting(query.initial_state())) {
    // ε ∈ L(q): with a prefix-free query this means L(q) = {ε}, which
    // selects every node; a single unlabeled-positive node is
    // characteristic.
    NodeId v = builder.AddNode("pos_eps");
    out.sample.AddPositive(v);
    out.graph = builder.Build();
    return out;
  }

  WordSample words = BuildRpniCharacteristicWords(query);

  // One chain per positive word; the head is a positive example. Because the
  // query is prefix-free, the head's unique uncovered path is the word
  // itself, so the learner's SCP selection recovers exactly `words.positive`.
  for (size_t i = 0; i < words.positive.size(); ++i) {
    const Word& p = words.positive[i];
    NodeId head = builder.AddNode("pos" + std::to_string(i));
    NodeId current = head;
    for (Symbol a : p) {
      NodeId next = builder.AddNode();
      builder.AddEdge(current, label_ids[a], next);
      current = next;
    }
    out.sample.AddPositive(head);
  }

  // Negative component: the completed query DFA without its accepting
  // states. Its path language from the initial state is exactly the words
  // with no prefix in L(q).
  const Dfa complete = query.Completed();
  std::vector<NodeId> state_node(complete.num_states(), 0);
  for (StateId s = 0; s < complete.num_states(); ++s) {
    if (complete.IsAccepting(s)) continue;
    state_node[s] = builder.AddNode("negdfa" + std::to_string(s));
  }
  for (StateId s = 0; s < complete.num_states(); ++s) {
    if (complete.IsAccepting(s)) continue;
    for (Symbol a = 0; a < complete.num_symbols(); ++a) {
      StateId t = complete.Next(s, a);
      if (t == kNoState || complete.IsAccepting(t)) continue;
      builder.AddEdge(state_node[s], label_ids[a], state_node[t]);
    }
  }
  out.sample.AddNegative(state_node[complete.initial_state()]);
  out.graph = builder.Build();
  return out;
}

}  // namespace rpqlearn
