#ifndef RPQLEARN_LEARN_SCP_H_
#define RPQLEARN_LEARN_SCP_H_

#include <optional>
#include <vector>

#include "automata/nfa.h"
#include "learn/coverage.h"
#include "util/status.h"

namespace rpqlearn {

/// Result of a smallest-consistent-path search.
struct ScpResult {
  /// The smallest (canonical order) consistent path of length ≤ k, or
  /// nullopt if none exists within the bound.
  std::optional<Word> path;
  /// Number of product states expanded (for diagnostics/benches).
  size_t expansions = 0;
};

/// Finds the smallest consistent path (lines 1–2 of the paper's
/// Algorithm 1): the canonically-least word `w` with |w| ≤ k such that
///  * the positive automaton accepts `w` (for the monadic learner this is
///    the graph NFA with initial {ν} and all states accepting, i.e.
///    `w ∈ paths_G(ν)`), and
///  * `w` is not covered by the negatives (`coverage` does not accept it).
///
/// Implemented as a canonical-order BFS over pairs (subset of positive NFA
/// states, coverage state), memoized on the pair: BFS with ascending-symbol
/// expansion reaches each pair first via its canonically-least word, so
/// pruning revisits preserves minimality. `positive` must be ε-free and its
/// alphabet width must match `coverage`. `initial` overrides the positive
/// automaton's own initial set, so one shared graph NFA serves every
/// positive example.
StatusOr<ScpResult> SmallestConsistentPath(const Nfa& positive,
                                           const std::vector<StateId>& initial,
                                           const SubsetCoverage& coverage,
                                           size_t max_expansions = 4000000);

}  // namespace rpqlearn

#endif  // RPQLEARN_LEARN_SCP_H_
