#ifndef RPQLEARN_LEARN_CONSISTENCY_H_
#define RPQLEARN_LEARN_CONSISTENCY_H_

#include "graph/graph.h"
#include "learn/sample.h"
#include "util/status.h"

namespace rpqlearn {

/// Exact consistency check via Lemma 3.1: S is consistent iff for every
/// ν ∈ S+, paths_G(ν) ⊄ paths_G(S−). Each test is an NFA language-inclusion
/// check — the problem is PSPACE-complete (Lemma 3.2), so the underlying
/// antichain search is capped and may return ResourceExhausted.
StatusOr<bool> IsSampleConsistent(const Graph& graph, const Sample& sample,
                                  size_t max_explored = 500000);

/// Bounded variant used in practice: true iff every positive node has a
/// consistent path of length ≤ k (a sufficient condition for consistency;
/// false only means "not witnessed within k").
StatusOr<bool> IsSampleConsistentBounded(const Graph& graph,
                                         const Sample& sample, uint32_t k);

}  // namespace rpqlearn

#endif  // RPQLEARN_LEARN_CONSISTENCY_H_
