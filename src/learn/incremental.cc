#include "learn/incremental.h"

#include <set>

#include "automata/minimize.h"
#include "automata/prefix_free.h"
#include "automata/pta.h"
#include "graph/graph_nfa.h"
#include "learn/rpni.h"
#include "learn/scp.h"
#include "query/eval.h"
#include "util/exec_context.h"

namespace rpqlearn {

IncrementalLearner::IncrementalLearner(const Graph& graph,
                                       LearnerOptions options)
    : graph_(graph),
      options_(options),
      graph_nfa_(GraphToNfa(graph, {})),
      negative_nfa_(GraphToNfa(graph, {})) {}

void IncrementalLearner::AddPositive(NodeId v) { sample_.AddPositive(v); }

void IncrementalLearner::AddNegative(NodeId v) {
  sample_.AddNegative(v);
  negative_nfa_ = GraphToNfa(graph_, sample_.negative);
  // Coverage automata are stale now; RefreshCoverage rebuilds lazily and
  // revalidates cached SCPs against the new coverage.
}

void IncrementalLearner::RefreshCoverage(uint32_t k, KState* state) {
  if (state->coverage.has_value() &&
      state->built_for_negatives == sample_.negative.size()) {
    return;
  }
  SubsetCoverage::Options cov_options;
  cov_options.k = k;
  cov_options.max_states = options_.coverage_state_cap;
  StatusOr<SubsetCoverage> built =
      SubsetCoverage::Build(negative_nfa_, cov_options);
  state->built_for_negatives = sample_.negative.size();
  if (!built.ok()) {
    state->coverage.reset();
    state->exhausted = true;
    return;
  }
  state->exhausted = false;
  const bool had_coverage = state->coverage.has_value();
  state->coverage.emplace(std::move(built).value());

  // Revalidate cached SCPs: a word that is still uncovered is still the
  // SCP; a nullopt stays nullopt (the uncovered set only shrank). Covered
  // words are dropped and recomputed on demand.
  if (had_coverage) {
    for (auto it = state->scp.begin(); it != state->scp.end();) {
      bool keep = true;
      if (it->second.has_value()) {
        StateId s = state->coverage->initial();
        for (Symbol a : *it->second) s = state->coverage->Next(s, a);
        keep = !state->coverage->IsCovering(s);
      }
      it = keep ? std::next(it) : state->scp.erase(it);
    }
  } else {
    state->scp.clear();
  }
}

const SubsetCoverage* IncrementalLearner::CoverageAtK(uint32_t k) {
  KState& state = per_k_[k];
  RefreshCoverage(k, &state);
  return state.coverage.has_value() ? &*state.coverage : nullptr;
}

LearnOutcome IncrementalLearner::LearnAtK(uint32_t k) {
  LearnOutcome outcome;
  outcome.stats.k_used = k;

  KState& state = per_k_[k];
  RefreshCoverage(k, &state);
  if (!state.coverage.has_value()) return outcome;  // abstain

  std::set<Word, CanonicalWordLess> scp_words;
  for (NodeId v : sample_.positive) {
    auto it = state.scp.find(v);
    if (it == state.scp.end()) {
      StatusOr<ScpResult> scp = SmallestConsistentPath(
          graph_nfa_, {v}, *state.coverage, options_.scp_expansion_cap);
      if (!scp.ok()) return outcome;  // abstain
      it = state.scp.emplace(v, scp->path).first;
    }
    if (it->second.has_value()) {
      ++outcome.stats.positives_with_scp;
      scp_words.insert(*it->second);
    }
  }
  outcome.stats.num_scps = scp_words.size();

  std::vector<Word> words(scp_words.begin(), scp_words.end());
  Dfa pta = BuildPta(words, graph_.num_symbols());
  outcome.stats.pta_states = pta.num_states();

  Dfa hypothesis = pta;
  if (options_.generalize && !words.empty()) {
    RpniStats rpni_stats;
    NfaDisjointnessOracle consistent(&negative_nfa_);
    hypothesis = RpniGeneralizeOnPartition(pta, std::ref(consistent),
                                           &rpni_stats, options_.exec);
    outcome.stats.merges_attempted = rpni_stats.merges_attempted;
    outcome.stats.merges_accepted = rpni_stats.merges_accepted;
    if (options_.exec != nullptr && options_.exec->tripped()) {
      outcome.status = options_.exec->TripStatus();
      return outcome;
    }
  }

  EvalOptions eval;
  eval.exec = options_.exec;
  StatusOr<BitVector> selected_or = EvalMonadic(graph_, hypothesis, eval);
  if (!selected_or.ok()) {
    outcome.status = selected_or.status();
    return outcome;
  }
  const BitVector& selected = *selected_or;
  for (NodeId v : sample_.positive) {
    if (!selected.Test(v)) return outcome;
  }
  for (NodeId v : sample_.negative) {
    if (selected.Test(v)) return outcome;
  }

  outcome.is_null = false;
  outcome.query = MakePrefixFree(Canonicalize(hypothesis));
  return outcome;
}

LearnOutcome IncrementalLearner::Learn() {
  uint32_t final_k =
      options_.auto_k ? std::max(options_.max_k, options_.k) : options_.k;
  LearnOutcome last;
  for (uint32_t k = options_.k; k <= final_k; ++k) {
    last = LearnAtK(k);
    if (!last.is_null || !last.status.ok()) return last;
  }
  return last;
}

}  // namespace rpqlearn
