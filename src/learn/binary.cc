#include "learn/binary.h"

#include <set>

#include "automata/minimize.h"
#include "automata/prefix_free.h"
#include "automata/pta.h"
#include "graph/graph_nfa.h"
#include "learn/coverage.h"
#include "learn/rpni.h"
#include "learn/scp.h"
#include "query/eval.h"
#include "util/exec_context.h"

namespace rpqlearn {
namespace {

LearnOutcome LearnBinaryWithFixedK(const Graph& graph,
                                   const PairSample& sample,
                                   const LearnerOptions& options,
                                   uint32_t k, const Nfa& negative_nfa) {
  LearnOutcome outcome;
  outcome.stats.k_used = k;

  SubsetCoverage::Options cov_options;
  cov_options.k = k;
  cov_options.max_states = options.coverage_state_cap;
  StatusOr<SubsetCoverage> coverage =
      SubsetCoverage::Build(negative_nfa, cov_options);
  if (!coverage.ok()) return outcome;

  std::set<Word, CanonicalWordLess> scp_words;
  for (const auto& [from, to] : sample.positive) {
    // Positive automaton: paths2_G(from, to) — acceptance at `to` only.
    Nfa positive = GraphToNfaBetween(graph, from, to);
    StatusOr<ScpResult> scp = SmallestConsistentPath(
        positive, {from}, coverage.value(), options.scp_expansion_cap);
    if (!scp.ok()) return outcome;
    if (scp->path.has_value()) {
      ++outcome.stats.positives_with_scp;
      scp_words.insert(*scp->path);
    }
  }
  outcome.stats.num_scps = scp_words.size();

  std::vector<Word> words(scp_words.begin(), scp_words.end());
  Dfa pta = BuildPta(words, graph.num_symbols());
  outcome.stats.pta_states = pta.num_states();

  Dfa hypothesis = pta;
  if (options.generalize && !words.empty()) {
    RpniStats rpni_stats;
    NfaDisjointnessOracle consistent(&negative_nfa);
    hypothesis = RpniGeneralizeOnPartition(pta, std::ref(consistent),
                                           &rpni_stats, options.exec);
    outcome.stats.merges_attempted = rpni_stats.merges_attempted;
    outcome.stats.merges_accepted = rpni_stats.merges_accepted;
    if (options.exec != nullptr && options.exec->tripped()) {
      outcome.status = options.exec->TripStatus();
      return outcome;
    }
  }

  for (const auto& [from, to] : sample.positive) {
    if (!SelectsPair(graph, hypothesis, from, to)) return outcome;
  }
  for (const auto& [from, to] : sample.negative) {
    if (SelectsPair(graph, hypothesis, from, to)) return outcome;
  }

  outcome.is_null = false;
  // Unlike the monadic learner, do NOT reduce to the prefix-free form:
  // under binary semantics the destination node is fixed, so a query and
  // its prefix-free form select different pairs (prefix-freeness is only an
  // equivalence for the monadic semantics of Sec. 2).
  outcome.query = Canonicalize(hypothesis);
  return outcome;
}

}  // namespace

LearnOutcome LearnBinaryPathQuery(const Graph& graph,
                                  const PairSample& sample,
                                  const LearnerOptions& options) {
  Nfa negative_nfa = GraphToNfaPairs(graph, sample.negative);
  uint32_t final_k =
      options.auto_k ? std::max(options.max_k, options.k) : options.k;
  LearnOutcome last;
  for (uint32_t k = options.k; k <= final_k; ++k) {
    last = LearnBinaryWithFixedK(graph, sample, options, k, negative_nfa);
    if (!last.is_null || !last.status.ok()) return last;
  }
  return last;
}

}  // namespace rpqlearn
