#include "learn/scp.h"

#include <algorithm>
#include <deque>
#include <set>
#include <utility>

#include "util/logging.h"

namespace rpqlearn {

StatusOr<ScpResult> SmallestConsistentPath(const Nfa& positive,
                                           const std::vector<StateId>& initial,
                                           const SubsetCoverage& coverage,
                                           size_t max_expansions) {
  RPQ_CHECK(!positive.has_epsilon_transitions());
  RPQ_CHECK_EQ(positive.num_symbols(), coverage.num_symbols());
  const uint32_t k = coverage.k();

  struct Entry {
    std::vector<StateId> pos_subset;  // sorted, non-empty
    StateId cov_state;
    Word word;
  };

  ScpResult result;
  std::vector<StateId> start = initial;
  std::sort(start.begin(), start.end());
  start.erase(std::unique(start.begin(), start.end()), start.end());
  if (start.empty()) return result;  // no paths at all

  auto is_goal = [&](const std::vector<StateId>& pos, StateId cov) {
    return positive.ContainsAccepting(pos) && !coverage.IsCovering(cov);
  };

  if (is_goal(start, coverage.initial())) {
    result.path = Word{};
    return result;
  }

  std::set<std::pair<std::vector<StateId>, StateId>> visited;
  std::deque<Entry> queue;
  visited.emplace(start, coverage.initial());
  queue.push_back(Entry{std::move(start), coverage.initial(), Word{}});

  while (!queue.empty()) {
    Entry current = std::move(queue.front());
    queue.pop_front();
    if (current.word.size() >= k) continue;
    if (++result.expansions > max_expansions) {
      return Status::ResourceExhausted("SCP search exceeded expansion cap");
    }
    for (Symbol a = 0; a < positive.num_symbols(); ++a) {
      std::vector<StateId> next_pos = positive.Step(current.pos_subset, a);
      if (next_pos.empty()) continue;  // no matching graph path
      StateId next_cov = coverage.Next(current.cov_state, a);
      Word next_word = current.word;
      next_word.push_back(a);
      if (is_goal(next_pos, next_cov)) {
        result.path = std::move(next_word);
        return result;
      }
      auto key = std::make_pair(std::move(next_pos), next_cov);
      if (visited.insert(key).second) {
        queue.push_back(
            Entry{std::move(key.first), next_cov, std::move(next_word)});
      }
    }
  }
  return result;
}

}  // namespace rpqlearn
