#include "learn/coverage.h"

#include <algorithm>
#include <deque>
#include <map>

#include "util/logging.h"

namespace rpqlearn {

StatusOr<SubsetCoverage> SubsetCoverage::Build(const Nfa& nfa,
                                               const Options& options) {
  RPQ_CHECK(!nfa.has_epsilon_transitions())
      << "SubsetCoverage requires an ε-free NFA";
  SubsetCoverage cov;
  cov.k_ = options.k;
  cov.num_symbols_ = nfa.num_symbols();

  std::map<std::vector<StateId>, StateId> ids;
  auto add_state = [&](std::vector<StateId> subset,
                       uint32_t depth) -> StateId {
    StateId id = static_cast<StateId>(cov.subsets_.size());
    cov.covering_.push_back(nfa.ContainsAccepting(subset));
    cov.depth_.push_back(depth);
    cov.table_.insert(cov.table_.end(), cov.num_symbols_, kNoState);
    ids.emplace(subset, id);
    cov.subsets_.push_back(std::move(subset));
    return id;
  };

  // State 0: the empty subset, self-looping on every symbol.
  add_state({}, 0);
  for (Symbol a = 0; a < cov.num_symbols_; ++a) {
    cov.table_[a] = 0;
  }

  std::vector<StateId> start = nfa.initial_states();
  std::sort(start.begin(), start.end());
  start.erase(std::unique(start.begin(), start.end()), start.end());
  std::deque<StateId> queue;
  if (start.empty()) {
    cov.initial_ = 0;
  } else {
    cov.initial_ = add_state(std::move(start), 0);
    queue.push_back(cov.initial_);
  }

  std::vector<std::vector<StateId>> buckets(cov.num_symbols_);
  while (!queue.empty()) {
    StateId current = queue.front();
    queue.pop_front();
    if (cov.depth_[current] >= cov.k_) continue;  // no transitions needed
    for (auto& bucket : buckets) bucket.clear();
    for (StateId member : cov.subsets_[current]) {
      for (const auto& [a, t] : nfa.TransitionsFrom(member)) {
        buckets[a].push_back(t);
      }
    }
    for (Symbol a = 0; a < cov.num_symbols_; ++a) {
      std::vector<StateId>& next = buckets[a];
      StateId target;
      if (next.empty()) {
        target = 0;
      } else {
        std::sort(next.begin(), next.end());
        next.erase(std::unique(next.begin(), next.end()), next.end());
        auto it = ids.find(next);
        if (it != ids.end()) {
          target = it->second;
        } else {
          if (cov.subsets_.size() >= options.max_states) {
            return Status::ResourceExhausted(
                "subset coverage exceeded state cap");
          }
          target = add_state(next, cov.depth_[current] + 1);
          queue.push_back(target);
        }
      }
      cov.table_[static_cast<size_t>(current) * cov.num_symbols_ + a] =
          target;
    }
  }
  return cov;
}

StateId SubsetCoverage::Next(StateId s, Symbol a) const {
  RPQ_DCHECK(s < num_states());
  RPQ_DCHECK(a < num_symbols_);
  StateId t = table_[static_cast<size_t>(s) * num_symbols_ + a];
  RPQ_CHECK(t != kNoState)
      << "SubsetCoverage::Next queried beyond truncation depth k=" << k_;
  return t;
}

}  // namespace rpqlearn
