#ifndef RPQLEARN_LEARN_RPNI_H_
#define RPQLEARN_LEARN_RPNI_H_

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <utility>
#include <vector>

#include "automata/dfa.h"
#include "automata/fold.h"
#include "automata/nfa.h"
#include "automata/word.h"
#include "util/status.h"

namespace rpqlearn {

class ExecContext;

/// Counters reported by the generalization loop.
struct RpniStats {
  size_t merges_attempted = 0;
  size_t merges_accepted = 0;
  size_t promotions = 0;
};

/// RPNI-style red–blue generalization (Oncina & García; lines 4–5 of the
/// paper's Algorithm 1). Starting from `pta`, repeatedly merge the
/// canonically-least unmerged ("blue") state into the least compatible
/// consolidated ("red") state, keeping a merge iff `is_consistent` approves
/// the folded automaton; otherwise promote the blue state to red. The
/// callback encodes the negative information: for word samples it is "no
/// negative word accepted", for the graph learner it is
/// "L(A) ∩ paths_G(S−) = ∅".
///
/// When `exec` is non-null, one ExecContext checkpoint fires per attempted
/// merge (the loop's unit of work). On a trip the loop stops immediately and
/// returns the hypothesis generalized so far; callers that need all-or-
/// nothing semantics must test `exec->tripped()` afterwards and discard.
Dfa RpniGeneralize(const Dfa& pta,
                   const std::function<bool(const Dfa&)>& is_consistent,
                   RpniStats* stats = nullptr, ExecContext* exec = nullptr);

/// Consistency oracle over a trial merge, evaluated directly on the
/// MergePartition quotient view — no candidate automaton is materialized.
using PartitionConsistency = std::function<bool(const MergePartition&)>;

/// Zero-copy variant of RpniGeneralize: each attempted merge is folded on a
/// union-find partition of the current DFA, tested through `is_consistent`,
/// and rolled back in O(cells touched) when rejected. Only *accepted* merges
/// materialize (and BFS-renumber) the quotient. For oracles that test the
/// quotient's language — which all of the learner's consistency checks do —
/// the result and stats are identical to RpniGeneralize's, at a fraction of
/// the cost: the reference path copies the whole automaton per attempt.
/// Shares RpniGeneralize's `exec` contract: one checkpoint per merge trial,
/// early return of the partial hypothesis on a trip.
Dfa RpniGeneralizeOnPartition(const Dfa& pta,
                              const PartitionConsistency& is_consistent,
                              RpniStats* stats = nullptr,
                              ExecContext* exec = nullptr);

/// PartitionConsistency for classic RPNI on words: the quotient must reject
/// every negative word. Runs each word on the partition view.
class WordRejectionOracle {
 public:
  /// `negatives` must outlive the oracle.
  explicit WordRejectionOracle(const std::vector<Word>* negatives)
      : negatives_(negatives) {}

  bool operator()(const MergePartition& view) const {
    for (const Word& w : *negatives_) {
      StateId s = view.InitialRep();
      for (Symbol a : w) {
        s = view.NextRep(s, a);
        if (s == kNoState) break;
      }
      if (s != kNoState && view.IsAcceptingRep(s)) return false;
    }
    return true;
  }

 private:
  const std::vector<Word>* negatives_;
};

/// PartitionConsistency for the graph learners: L(quotient) ∩ L(nfa) must be
/// empty (the paper's "no negative node covered" check, normally phrased as
/// IntersectionIsEmpty(candidate.ToNfa(), negative_nfa)). Decided by product
/// reachability between the partition view and the NFA; the visited arena is
/// allocated once and recycled across trials via generation stamps, so a
/// trial allocates nothing after warm-up. The NFA must be ε-free (graph NFAs
/// are) and must outlive the oracle.
class NfaDisjointnessOracle {
 public:
  explicit NfaDisjointnessOracle(const Nfa* nfa);

  bool operator()(const MergePartition& view) const;

 private:
  /// Above this many (DFA state × NFA state) cells (128 MiB of stamps) the
  /// dense arena would dwarf what a trial actually visits; fall back to a
  /// per-trial sparse visited set instead.
  static constexpr size_t kDenseStampLimit = size_t{1} << 25;

  const Nfa* nfa_;
  mutable std::vector<uint32_t> stamp_;  // visited iff stamp == generation
  mutable uint32_t generation_ = 0;
  mutable std::unordered_set<size_t> sparse_visited_;
  mutable std::vector<std::pair<StateId, StateId>> stack_;
};

/// A set of positive and negative word examples for classic RPNI.
struct WordSample {
  std::vector<Word> positive;
  std::vector<Word> negative;
};

/// Classic RPNI on words: PTA of the positives, generalized while no
/// negative word is accepted. Returns InvalidArgument if a word is both
/// positive and negative. This is the algorithm whose characteristic sets
/// drive the paper's learnability proof (Thm. 3.5).
StatusOr<Dfa> RpniLearnWords(const WordSample& sample, uint32_t num_symbols);

}  // namespace rpqlearn

#endif  // RPQLEARN_LEARN_RPNI_H_
