#ifndef RPQLEARN_LEARN_RPNI_H_
#define RPQLEARN_LEARN_RPNI_H_

#include <functional>
#include <vector>

#include "automata/dfa.h"
#include "automata/word.h"
#include "util/status.h"

namespace rpqlearn {

/// Counters reported by the generalization loop.
struct RpniStats {
  size_t merges_attempted = 0;
  size_t merges_accepted = 0;
  size_t promotions = 0;
};

/// RPNI-style red–blue generalization (Oncina & García; lines 4–5 of the
/// paper's Algorithm 1). Starting from `pta`, repeatedly merge the
/// canonically-least unmerged ("blue") state into the least compatible
/// consolidated ("red") state, keeping a merge iff `is_consistent` approves
/// the folded automaton; otherwise promote the blue state to red. The
/// callback encodes the negative information: for word samples it is "no
/// negative word accepted", for the graph learner it is
/// "L(A) ∩ paths_G(S−) = ∅".
Dfa RpniGeneralize(const Dfa& pta,
                   const std::function<bool(const Dfa&)>& is_consistent,
                   RpniStats* stats = nullptr);

/// A set of positive and negative word examples for classic RPNI.
struct WordSample {
  std::vector<Word> positive;
  std::vector<Word> negative;
};

/// Classic RPNI on words: PTA of the positives, generalized while no
/// negative word is accepted. Returns InvalidArgument if a word is both
/// positive and negative. This is the algorithm whose characteristic sets
/// drive the paper's learnability proof (Thm. 3.5).
StatusOr<Dfa> RpniLearnWords(const WordSample& sample, uint32_t num_symbols);

}  // namespace rpqlearn

#endif  // RPQLEARN_LEARN_RPNI_H_
