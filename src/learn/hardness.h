#ifndef RPQLEARN_LEARN_HARDNESS_H_
#define RPQLEARN_LEARN_HARDNESS_H_

#include <vector>

#include "automata/dfa.h"
#include "graph/graph.h"
#include "learn/sample.h"

namespace rpqlearn {

/// A graph-plus-sample instance produced by a hardness reduction.
struct HardnessInstance {
  Graph graph;
  Sample sample;
};

/// The paper's Lemma 3.2 construction (Fig. 13): given DFAs D1..Dn over a
/// common alphabet Σ (symbols 0..m-1), builds a graph over Σ ∪ {s1, s2}
/// and a sample that is *consistent iff ∪ L(Di) ≠ Σ**. Since universality
/// of a DFA union is PSPACE-complete, so is consistency checking. The
/// returned graph names the fresh symbols "s1" and "s2"; input labels are
/// named via `alphabet`.
HardnessInstance BuildUniversalityReduction(const std::vector<Dfa>& dfas,
                                            const Alphabet& alphabet);

/// One 3-CNF clause; literals are ±(variable index + 1), e.g. {1, -2, 3}.
struct Clause3 {
  int literals[3];
};

/// The paper's Lemma 3.3 construction (Fig. 14): given a 3-CNF formula,
/// builds a graph and sample such that a consistent query of the form
/// a1·...·an (pairwise distinct symbols) exists iff the formula is
/// satisfiable — and on these instances plain consistency coincides with
/// satisfiability, so IsSampleConsistent decides SAT on them.
HardnessInstance Build3SatReduction(const std::vector<Clause3>& clauses,
                                    int num_variables);

}  // namespace rpqlearn

#endif  // RPQLEARN_LEARN_HARDNESS_H_
