#ifndef RPQLEARN_LEARN_NARY_H_
#define RPQLEARN_LEARN_NARY_H_

#include <vector>

#include "automata/dfa.h"
#include "graph/graph.h"
#include "learn/learner.h"
#include "learn/sample.h"

namespace rpqlearn {

/// Outcome of n-ary learning: one query per tuple position pair.
struct NaryOutcome {
  bool is_null = true;
  /// The learned queries (q1..q(n-1)); only meaningful when !is_null.
  std::vector<Dfa> queries;
  std::vector<LearnerStats> stats;
};

/// Algorithm 3 (Appendix B): learning an n-ary path query by projecting
/// every example tuple onto its consecutive pairs and running the binary
/// learner (Algorithm 2) per position, abstaining if any position abstains.
/// All tuples must share the same arity ≥ 2.
NaryOutcome LearnNaryPathQuery(const Graph& graph, const TupleSample& sample,
                               const LearnerOptions& options = {});

}  // namespace rpqlearn

#endif  // RPQLEARN_LEARN_NARY_H_
