#ifndef RPQLEARN_LEARN_COVERAGE_H_
#define RPQLEARN_LEARN_COVERAGE_H_

#include <cstdint>
#include <vector>

#include "automata/nfa.h"
#include "util/status.h"

namespace rpqlearn {

/// Depth-truncated deterministic subset automaton of an NFA, the machinery
/// behind the paper's coverage tests: a word `w` of length ≤ k is *covered*
/// iff the subset reached by `w` contains an accepting NFA state.
///
/// For the monadic learner the NFA is the graph with initial set S− and all
/// states accepting, so covered(w) ⟺ w ∈ paths_G(S−) ⟺ subset non-empty.
/// For the binary learner the NFA is the disjoint pair-tagged graph with
/// acceptance at the pairs' end nodes, so covered(w) ⟺ w ∈ paths2_G(S−).
///
/// States are materialized breadth-first up to depth k; transitions are only
/// defined for states first reached at depth < k (deeper queries would
/// correspond to words longer than k, which callers never ask about). The
/// empty subset is state 0 and absorbs all its transitions.
class SubsetCoverage {
 public:
  struct Options {
    uint32_t k = 2;
    /// Hard cap on materialized subset states; exceeding it aborts the build
    /// with ResourceExhausted (the learner then abstains, which is exactly
    /// the framework-with-abstain behavior of Sec. 3.1).
    size_t max_states = 1 << 20;
  };

  /// Builds the truncated subset automaton of `nfa` (which must not have
  /// ε-transitions).
  static StatusOr<SubsetCoverage> Build(const Nfa& nfa,
                                        const Options& options);

  uint32_t k() const { return k_; }
  uint32_t num_symbols() const { return num_symbols_; }
  uint32_t num_states() const {
    return static_cast<uint32_t>(covering_.size());
  }

  /// State of the initial subset (the empty state if the NFA has no initial
  /// states).
  StateId initial() const { return initial_; }

  /// Id of the empty subset.
  StateId empty_state() const { return 0; }
  bool IsEmptySubset(StateId s) const { return s == 0; }

  /// True iff the subset contains an accepting NFA state ("the word leading
  /// here is covered by the negatives").
  bool IsCovering(StateId s) const { return covering_[s]; }

  /// Deterministic transition; caller must only query states at depth < k
  /// (checked). The empty state loops to itself.
  StateId Next(StateId s, Symbol a) const;

  /// BFS depth at which the subset was first reached.
  uint32_t DepthOf(StateId s) const { return depth_[s]; }

  /// Size of the subset represented by state `s`.
  size_t SubsetSize(StateId s) const { return subsets_[s].size(); }

 private:
  SubsetCoverage() = default;

  uint32_t k_ = 0;
  uint32_t num_symbols_ = 0;
  StateId initial_ = 0;
  std::vector<bool> covering_;
  std::vector<uint32_t> depth_;
  std::vector<std::vector<StateId>> subsets_;
  /// Transition table; kNoState marks "not materialized" (depth == k rows).
  std::vector<StateId> table_;
};

}  // namespace rpqlearn

#endif  // RPQLEARN_LEARN_COVERAGE_H_
