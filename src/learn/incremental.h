#ifndef RPQLEARN_LEARN_INCREMENTAL_H_
#define RPQLEARN_LEARN_INCREMENTAL_H_

#include <map>
#include <optional>
#include <unordered_map>

#include "graph/graph.h"
#include "learn/coverage.h"
#include "learn/learner.h"
#include "learn/sample.h"

namespace rpqlearn {

/// Incremental version of Algorithm 1 for the interactive loop (Sec. 4),
/// where one label arrives per round and the learner reruns every time.
/// Two facts make caching sound:
///
///  * Adding examples only ever *grows* paths_G(S−), i.e. shrinks the set
///    of uncovered words. A cached SCP that is still uncovered therefore
///    remains the canonically-least uncovered path; and a positive that had
///    no SCP within k gains none. Only SCPs that become covered must be
///    recomputed.
///  * The coverage automaton and negative NFA depend only on S− (for a given
///    k), so positive labels reuse them unchanged.
///
/// Produces byte-identical results to LearnPathQuery at the same k.
class IncrementalLearner {
 public:
  IncrementalLearner(const Graph& graph, LearnerOptions options);

  void AddPositive(NodeId v);
  void AddNegative(NodeId v);

  const Sample& sample() const { return sample_; }

  /// Runs Algorithm 1 at exactly SCP bound `k`, reusing cached coverage and
  /// SCPs where valid.
  LearnOutcome LearnAtK(uint32_t k);

  /// Dynamic-k variant mirroring LearnPathQuery: sweeps k from options.k to
  /// options.max_k until a query is returned.
  LearnOutcome Learn();

  /// The coverage automaton for the current negatives at `k` (built on
  /// demand and cached). Lets the interactive session share it with the
  /// informativeness computation. Null on resource exhaustion.
  const SubsetCoverage* CoverageAtK(uint32_t k);

 private:
  struct KState {
    std::optional<SubsetCoverage> coverage;
    /// Number of negatives the coverage was built for.
    size_t built_for_negatives = 0;
    /// Cached SCP per positive node (nullopt = proven absent within k).
    std::unordered_map<NodeId, std::optional<Word>> scp;
    /// True when the coverage build hit the state cap at this k.
    bool exhausted = false;
  };

  /// Ensures state.coverage matches the current negatives.
  void RefreshCoverage(uint32_t k, KState* state);

  const Graph& graph_;
  LearnerOptions options_;
  Sample sample_;
  Nfa graph_nfa_;     ///< whole graph, no initial states (shared by SCPs)
  Nfa negative_nfa_;  ///< rebuilt when a negative arrives
  std::map<uint32_t, KState> per_k_;
};

}  // namespace rpqlearn

#endif  // RPQLEARN_LEARN_INCREMENTAL_H_
