#ifndef RPQLEARN_LEARN_BINARY_H_
#define RPQLEARN_LEARN_BINARY_H_

#include "graph/graph.h"
#include "learn/learner.h"
#include "learn/sample.h"

namespace rpqlearn {

/// Algorithm 2 (Appendix B): learning under *binary* semantics, where an
/// example is a pair (ν, ν') and the query selects pairs connected by a path
/// in L(q). The only change to Algorithm 1 is that each positive example
/// constrains both endpoints, so the SCP search accepts at the destination
/// node and the coverage automaton tracks `paths2_G(S−)`.
LearnOutcome LearnBinaryPathQuery(const Graph& graph,
                                  const PairSample& sample,
                                  const LearnerOptions& options = {});

}  // namespace rpqlearn

#endif  // RPQLEARN_LEARN_BINARY_H_
