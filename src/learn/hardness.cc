#include "learn/hardness.h"

#include <set>
#include <string>

#include "util/logging.h"

namespace rpqlearn {

HardnessInstance BuildUniversalityReduction(const std::vector<Dfa>& dfas,
                                            const Alphabet& alphabet) {
  RPQ_CHECK(!dfas.empty());
  const uint32_t sigma = dfas[0].num_symbols();
  for (const Dfa& d : dfas) RPQ_CHECK_EQ(d.num_symbols(), sigma);
  RPQ_CHECK_LE(sigma, alphabet.size());

  HardnessInstance out;
  GraphBuilder builder;
  std::vector<Symbol> base_labels;
  for (Symbol a = 0; a < sigma; ++a) {
    base_labels.push_back(builder.InternLabel(alphabet.Name(a)));
  }
  Symbol s1 = builder.InternLabel("s1");
  Symbol s2 = builder.InternLabel("s2");

  // One component per DFA Di: ν_i --s1--> states(D_i); accepting --s2--> ν'_i.
  for (size_t i = 0; i < dfas.size(); ++i) {
    const Dfa& d = dfas[i];
    NodeId entry = builder.AddNode("nu" + std::to_string(i + 1));
    std::vector<NodeId> state_node(d.num_states());
    for (StateId s = 0; s < d.num_states(); ++s) {
      state_node[s] = builder.AddNode();
    }
    NodeId exit = builder.AddNode("nu" + std::to_string(i + 1) + "p");
    for (StateId s = 0; s < d.num_states(); ++s) {
      for (Symbol a = 0; a < sigma; ++a) {
        StateId t = d.Next(s, a);
        if (t != kNoState) {
          builder.AddEdge(state_node[s], base_labels[a], state_node[t]);
        }
      }
      if (d.IsAccepting(s)) builder.AddEdge(state_node[s], s2, exit);
    }
    builder.AddEdge(entry, s1, state_node[d.initial_state()]);
    out.sample.AddNegative(entry);
  }

  // G_{n+1}: ν_{n+1} --s1--> u1, u1 loops on Σ (covers every s1·w prefix).
  {
    NodeId entry = builder.AddNode("nu_n1");
    NodeId u1 = builder.AddNode("u1");
    builder.AddEdge(entry, s1, u1);
    for (Symbol a : base_labels) builder.AddEdge(u1, a, u1);
    out.sample.AddNegative(entry);
  }

  // G_{n+2}: ν_{n+2} --s1--> u2, u2 loops on Σ, u2 --s2--> ν'_{n+2};
  // the positive example, whose paths are s1·Σ*·(ε + s2).
  {
    NodeId entry = builder.AddNode("nu_n2");
    NodeId u2 = builder.AddNode("u2");
    NodeId exit = builder.AddNode("nu_n2p");
    builder.AddEdge(entry, s1, u2);
    for (Symbol a : base_labels) builder.AddEdge(u2, a, u2);
    builder.AddEdge(u2, s2, exit);
    out.sample.AddPositive(entry);
  }

  out.graph = builder.Build();
  return out;
}

HardnessInstance Build3SatReduction(const std::vector<Clause3>& clauses,
                                    int num_variables) {
  RPQ_CHECK(!clauses.empty());
  const size_t k = clauses.size();
  HardnessInstance out;
  GraphBuilder builder;

  Symbol s1 = builder.InternLabel("s1");
  Symbol s2 = builder.InternLabel("s2");
  // a_{ij}: label of the j-th literal of clause i.
  std::vector<std::array<Symbol, 3>> lit_label(k);
  for (size_t i = 0; i < k; ++i) {
    for (int j = 0; j < 3; ++j) {
      lit_label[i][j] = builder.InternLabel(
          "a" + std::to_string(i + 1) + std::to_string(j + 1));
    }
  }
  std::vector<Symbol> all_symbols;
  all_symbols.push_back(s1);
  all_symbols.push_back(s2);
  for (const auto& labels : lit_label) {
    for (Symbol a : labels) all_symbols.push_back(a);
  }

  // T_i / F_i: labels of positive / negative occurrences of variable x_i.
  std::vector<std::set<Symbol>> pos_labels(num_variables);
  std::vector<std::set<Symbol>> neg_labels(num_variables);
  for (size_t i = 0; i < k; ++i) {
    for (int j = 0; j < 3; ++j) {
      int lit = clauses[i].literals[j];
      RPQ_CHECK_NE(lit, 0);
      int var = std::abs(lit) - 1;
      RPQ_CHECK_LT(var, num_variables);
      (lit > 0 ? pos_labels : neg_labels)[var].insert(lit_label[i][j]);
    }
  }

  // G_{φ+}: the positive chain ν_{φ+} --s1--> u1 --a_{1j}--> u2 ... --s2-->.
  {
    NodeId entry = builder.AddNode("phi_pos");
    std::vector<NodeId> u(k + 1);
    for (size_t i = 0; i <= k; ++i) {
      u[i] = builder.AddNode("up" + std::to_string(i + 1));
    }
    NodeId exit = builder.AddNode("phi_pos_exit");
    builder.AddEdge(entry, s1, u[0]);
    for (size_t i = 0; i < k; ++i) {
      for (int j = 0; j < 3; ++j) {
        builder.AddEdge(u[i], lit_label[i][j], u[i + 1]);
      }
    }
    builder.AddEdge(u[k], s2, exit);
    out.sample.AddPositive(entry);
  }

  // G_{φ−}: same chain without the trailing s2 — forces consistent queries
  // to end with s2.
  {
    NodeId entry = builder.AddNode("phi_neg");
    std::vector<NodeId> u(k + 1);
    for (size_t i = 0; i <= k; ++i) {
      u[i] = builder.AddNode("un" + std::to_string(i + 1));
    }
    builder.AddEdge(entry, s1, u[0]);
    for (size_t i = 0; i < k; ++i) {
      for (int j = 0; j < 3; ++j) {
        builder.AddEdge(u[i], lit_label[i][j], u[i + 1]);
      }
    }
    out.sample.AddNegative(entry);
  }

  // G_i per variable appearing in both polarities: covers every s1·w·s2
  // whose label set uses both a positive and a negative literal of x_i.
  for (int var = 0; var < num_variables; ++var) {
    const auto& ti = pos_labels[var];
    const auto& fi = neg_labels[var];
    if (ti.empty() || fi.empty()) continue;
    NodeId n1 = builder.AddNode("x" + std::to_string(var + 1) + "_1");
    NodeId n2 = builder.AddNode("x" + std::to_string(var + 1) + "_2");
    NodeId n3 = builder.AddNode("x" + std::to_string(var + 1) + "_3");
    NodeId n4 = builder.AddNode("x" + std::to_string(var + 1) + "_4");
    NodeId n5 = builder.AddNode("x" + std::to_string(var + 1) + "_5");
    builder.AddEdge(n1, s1, n2);
    for (Symbol a : all_symbols) {
      if (a != s2 && ti.count(a) == 0 && fi.count(a) == 0) {
        builder.AddEdge(n2, a, n2);
      }
      if (a != s2 && ti.count(a) == 0) {
        builder.AddEdge(n3, a, n3);
      }
      if (a != s2 && fi.count(a) == 0) {
        builder.AddEdge(n4, a, n4);
      }
      builder.AddEdge(n5, a, n5);
    }
    for (Symbol a : fi) {
      builder.AddEdge(n2, a, n3);
      builder.AddEdge(n4, a, n5);
    }
    for (Symbol a : ti) {
      builder.AddEdge(n2, a, n4);
      builder.AddEdge(n3, a, n5);
    }
    out.sample.AddNegative(n1);
  }

  out.graph = builder.Build();
  return out;
}

}  // namespace rpqlearn
