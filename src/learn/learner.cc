#include "learn/learner.h"

#include <algorithm>
#include <set>

#include "automata/minimize.h"
#include "automata/prefix_free.h"
#include "automata/pta.h"
#include "graph/graph_nfa.h"
#include "learn/coverage.h"
#include "learn/rpni.h"
#include "learn/scp.h"
#include "query/eval.h"
#include "util/exec_context.h"

namespace rpqlearn {
namespace {

/// One pass of Algorithm 1 with a fixed k. Returns is_null on abstain.
LearnOutcome LearnWithFixedK(const Graph& graph, const Sample& sample,
                             const LearnerOptions& options, uint32_t k,
                             const Nfa& graph_nfa_all,
                             const Nfa& negative_nfa) {
  LearnOutcome outcome;
  outcome.stats.k_used = k;

  SubsetCoverage::Options cov_options;
  cov_options.k = k;
  cov_options.max_states = options.coverage_state_cap;
  StatusOr<SubsetCoverage> coverage =
      SubsetCoverage::Build(negative_nfa, cov_options);
  if (!coverage.ok()) return outcome;  // resource cap: abstain

  // Lines 1-2: the set P of smallest consistent paths, deduplicated. The
  // graph NFA is shared across positives; only the initial set varies.
  std::set<Word, CanonicalWordLess> scp_words;
  for (NodeId v : sample.positive) {
    StatusOr<ScpResult> scp =
        SmallestConsistentPath(graph_nfa_all, {v}, coverage.value(),
                               options.scp_expansion_cap);
    if (!scp.ok()) return outcome;  // expansion cap: abstain
    if (scp->path.has_value()) {
      ++outcome.stats.positives_with_scp;
      scp_words.insert(*scp->path);
    }
  }
  outcome.stats.num_scps = scp_words.size();

  // Line 3: prefix tree acceptor of the SCPs.
  std::vector<Word> words(scp_words.begin(), scp_words.end());
  Dfa pta = BuildPta(words, graph.num_symbols());
  outcome.stats.pta_states = pta.num_states();

  // Lines 4-5: generalization by state merging while no negative node is
  // covered, i.e. while L(A) ∩ paths_G(S−) = ∅ (PTIME product emptiness),
  // decided on the zero-copy merge partition view.
  Dfa hypothesis = pta;
  if (options.generalize && !words.empty()) {
    RpniStats rpni_stats;
    NfaDisjointnessOracle consistent(&negative_nfa);
    hypothesis = RpniGeneralizeOnPartition(pta, std::ref(consistent),
                                           &rpni_stats, options.exec);
    outcome.stats.merges_attempted = rpni_stats.merges_attempted;
    outcome.stats.merges_accepted = rpni_stats.merges_accepted;
    if (options.exec != nullptr && options.exec->tripped()) {
      // Discard the partially generalized hypothesis: a half-merged query
      // is consistent but not the canonical result.
      outcome.status = options.exec->TripStatus();
      return outcome;
    }
  }

  // Lines 6-7: the query must select every positive node (not only those
  // whose SCPs built the PTA).
  EvalOptions eval;
  eval.exec = options.exec;
  StatusOr<BitVector> selected_or = EvalMonadic(graph, hypothesis, eval);
  if (!selected_or.ok()) {
    outcome.status = selected_or.status();
    return outcome;
  }
  const BitVector& selected = *selected_or;
  for (NodeId v : sample.positive) {
    if (!selected.Test(v)) return outcome;  // abstain
  }
  // Defensive re-check of consistency on the negative side (guaranteed by
  // construction, cheap to verify).
  for (NodeId v : sample.negative) {
    if (selected.Test(v)) return outcome;
  }

  outcome.is_null = false;
  outcome.query = MakePrefixFree(Canonicalize(hypothesis));
  return outcome;
}

}  // namespace

LearnOutcome LearnPathQuery(const Graph& graph, const Sample& sample,
                            const LearnerOptions& options) {
  Nfa graph_nfa_all = GraphToNfa(graph, {});
  Nfa negative_nfa = GraphToNfa(graph, sample.negative);

  uint32_t final_k = options.auto_k ? std::max(options.max_k, options.k)
                                    : options.k;
  LearnOutcome last;
  for (uint32_t k = options.k; k <= final_k; ++k) {
    last = LearnWithFixedK(graph, sample, options, k, graph_nfa_all,
                           negative_nfa);
    if (!last.is_null || !last.status.ok()) return last;
  }
  return last;
}

}  // namespace rpqlearn
