#ifndef RPQLEARN_LEARN_SAMPLE_H_
#define RPQLEARN_LEARN_SAMPLE_H_

#include <algorithm>
#include <vector>

#include "graph/graph.h"
#include "util/bit_vector.h"

namespace rpqlearn {

/// A set of labeled node examples (Sec. 3.1): S+ are nodes the user wants in
/// the query result, S− nodes she rejects.
struct Sample {
  std::vector<NodeId> positive;
  std::vector<NodeId> negative;

  void AddPositive(NodeId v) { positive.push_back(v); }
  void AddNegative(NodeId v) { negative.push_back(v); }

  bool IsLabeled(NodeId v) const {
    return std::find(positive.begin(), positive.end(), v) !=
               positive.end() ||
           std::find(negative.begin(), negative.end(), v) != negative.end();
  }

  size_t size() const { return positive.size() + negative.size(); }
  bool empty() const { return positive.empty() && negative.empty(); }

  /// Labels `nodes` according to the goal query's result set — the
  /// simulated-user protocol of the paper's experiments (Sec. 5.2).
  static Sample FromGoal(const BitVector& goal,
                         const std::vector<NodeId>& nodes) {
    Sample s;
    for (NodeId v : nodes) {
      if (goal.Test(v)) {
        s.AddPositive(v);
      } else {
        s.AddNegative(v);
      }
    }
    return s;
  }
};

/// A sample of node pairs for binary semantics (Appendix B).
struct PairSample {
  std::vector<std::pair<NodeId, NodeId>> positive;
  std::vector<std::pair<NodeId, NodeId>> negative;
};

/// A sample of node tuples for n-ary semantics (Appendix B). All tuples
/// must have the same arity n ≥ 2.
struct TupleSample {
  std::vector<std::vector<NodeId>> positive;
  std::vector<std::vector<NodeId>> negative;
};

}  // namespace rpqlearn

#endif  // RPQLEARN_LEARN_SAMPLE_H_
