#ifndef RPQLEARN_LEARN_CHAR_SAMPLE_H_
#define RPQLEARN_LEARN_CHAR_SAMPLE_H_

#include <vector>

#include "automata/dfa.h"
#include "graph/graph.h"
#include "learn/rpni.h"
#include "learn/sample.h"

namespace rpqlearn {

/// RPNI characteristic word sets for `target` (canonical, trimmed DFA):
/// shortest access strings SP, kernel K = SP·Σ ∩ defined, acceptance
/// extensions for kernel words, and distinguishing suffixes for every
/// (kernel, SP) state pair. RPNI run on a superset of these words returns a
/// DFA language-equal to `target` (Oncina & García 1992; used in the proof
/// of the paper's Thm. 3.5).
WordSample BuildRpniCharacteristicWords(const Dfa& target);

/// A graph plus sample that is characteristic for a query (Thm. 3.5).
struct CharacteristicGraphSample {
  Graph graph;
  Sample sample;
};

/// Builds the characteristic graph of a *prefix-free* canonical query
/// (the paper's construction, illustrated in Fig. 7):
///  * one chain per positive characteristic word p, whose head node has
///    p as its unique SCP;
///  * one negative node: the initial state of the completed canonical DFA
///    with accepting states removed, whose path language is exactly the
///    words with no prefix in L(q) — covering the negative characteristic
///    words and every smaller non-L-prefixed word (conditions (ii)+(iii)).
/// `alphabet` provides label names and must have ≥ query.num_symbols()
/// symbols. For the degenerate query ε the graph is a single positive node.
CharacteristicGraphSample BuildCharacteristicGraph(const Dfa& query,
                                                   const Alphabet& alphabet);

}  // namespace rpqlearn

#endif  // RPQLEARN_LEARN_CHAR_SAMPLE_H_
