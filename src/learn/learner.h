#ifndef RPQLEARN_LEARN_LEARNER_H_
#define RPQLEARN_LEARN_LEARNER_H_

#include <vector>

#include "automata/dfa.h"
#include "graph/graph.h"
#include "learn/sample.h"
#include "util/status.h"

namespace rpqlearn {

class ExecContext;

/// Knobs of the paper's Algorithm 1 plus the dynamic-k policy of Sec. 5.1.
struct LearnerOptions {
  /// Initial maximal SCP length (the paper starts at 2 in experiments).
  uint32_t k = 2;
  /// If true, increment k while the learned query misses positives
  /// (Sec. 5.1: "if ... does not select all positive nodes, we increment k
  /// and iterate"); if false, use exactly `k` as in Algorithm 1.
  bool auto_k = true;
  /// Upper bound for the dynamic-k loop. Theorem 3.5 needs k = 2n+1 for
  /// queries of size n; the paper observes 2–4 suffices in practice.
  uint32_t max_k = 8;
  /// Ablation switch: when false, skip generalization and return the plain
  /// disjunction of SCPs (the PTA), as discussed in Sec. 5.2.
  bool generalize = true;
  /// Resource caps; hitting them makes the learner abstain.
  size_t coverage_state_cap = 1 << 20;
  size_t scp_expansion_cap = 4000000;
  /// Optional cooperative execution control: checkpointed once per RPNI
  /// merge trial and threaded into the hypothesis evaluation. A trip makes
  /// the learner abstain with `LearnOutcome.status` carrying the typed trip
  /// Status; null (the default) keeps the learner uninterruptible. Must
  /// outlive the learner call; not owned.
  ExecContext* exec = nullptr;
};

/// Diagnostics of one learner invocation.
struct LearnerStats {
  uint32_t k_used = 0;
  size_t num_scps = 0;            ///< distinct SCP words found
  size_t positives_with_scp = 0;  ///< positives that had an SCP within k
  size_t pta_states = 0;
  size_t merges_attempted = 0;
  size_t merges_accepted = 0;
};

/// Outcome of learning: either a query or the paper's `null` (abstain).
struct LearnOutcome {
  /// True when the learner abstained (no consistent query constructible
  /// from SCPs of length ≤ k, or a resource cap was hit).
  bool is_null = true;
  /// The learned query as a canonical prefix-free DFA; only meaningful when
  /// !is_null. Guaranteed consistent with the input sample.
  Dfa query{0};
  LearnerStats stats;
  /// Ok for a normal outcome (learned or organic abstain). A non-Ok status
  /// means LearnerOptions.exec tripped mid-learn (deadline, cancellation,
  /// memory budget, or injected fault): is_null is true and the partial
  /// hypothesis was discarded.
  Status status = Status::Ok();
};

/// The paper's Algorithm 1 (monadic semantics): select the smallest
/// consistent path of length ≤ k for every positive node, build their PTA,
/// generalize by state merging while no negative node is covered, and
/// return the query iff it selects every positive node; otherwise abstain.
/// Runs in polynomial time for fixed k (Thm. 3.5).
LearnOutcome LearnPathQuery(const Graph& graph, const Sample& sample,
                            const LearnerOptions& options = {});

}  // namespace rpqlearn

#endif  // RPQLEARN_LEARN_LEARNER_H_
