#ifndef RPQLEARN_REGEX_AST_H_
#define RPQLEARN_REGEX_AST_H_

#include <memory>
#include <vector>

#include "automata/alphabet.h"

namespace rpqlearn {

/// Node kinds of the regular-expression grammar from Sec. 2 of the paper:
/// q := ε | a | q1 + q2 | q1 · q2 | q*  (plus ∅ for internal use by the
/// DFA→regex converter).
enum class RegexKind {
  kEmptySet,  ///< ∅ — matches nothing
  kEpsilon,   ///< ε
  kSymbol,    ///< a ∈ Σ
  kConcat,    ///< q1 · q2 · ... (n-ary)
  kUnion,     ///< q1 + q2 + ... (n-ary)
  kStar,      ///< q*
};

struct RegexNode;

/// Immutable shared regex tree.
using RegexPtr = std::shared_ptr<const RegexNode>;

/// One node of a regular expression AST.
struct RegexNode {
  RegexKind kind;
  Symbol symbol = 0;              ///< valid when kind == kSymbol
  std::vector<RegexPtr> children;  ///< kConcat/kUnion: ≥2; kStar: exactly 1
};

/// Factory helpers. Concat/Union/Star apply local simplifications
/// (∅ annihilates concat, ε is a concat identity, ∅ is a union identity,
/// (q*)* = q*, ε* = ∅* = ε, duplicate union operands collapse) so that the
/// DFA→regex converter produces readable output.
RegexPtr MakeEmptySet();
RegexPtr MakeEpsilon();
RegexPtr MakeSymbol(Symbol symbol);
RegexPtr MakeConcat(RegexPtr left, RegexPtr right);
RegexPtr MakeUnion(RegexPtr left, RegexPtr right);
RegexPtr MakeStar(RegexPtr inner);

/// Builds q1 · q2 · ... · qn (ε for empty input).
RegexPtr MakeConcatAll(const std::vector<RegexPtr>& parts);

/// Builds q1 + q2 + ... + qn (∅ for empty input).
RegexPtr MakeUnionAll(const std::vector<RegexPtr>& parts);

/// Number of AST nodes (a readability proxy used in tests/benches).
size_t RegexNodeCount(const RegexPtr& regex);

/// Structural equality.
bool RegexEquals(const RegexPtr& a, const RegexPtr& b);

}  // namespace rpqlearn

#endif  // RPQLEARN_REGEX_AST_H_
