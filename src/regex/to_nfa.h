#ifndef RPQLEARN_REGEX_TO_NFA_H_
#define RPQLEARN_REGEX_TO_NFA_H_

#include "automata/dfa.h"
#include "automata/nfa.h"
#include "regex/ast.h"

namespace rpqlearn {

/// Thompson's construction: an ε-NFA with one initial and one accepting
/// state whose language is L(regex). `num_symbols` must cover every symbol
/// used in the regex.
Nfa ThompsonConstruct(const RegexPtr& regex, uint32_t num_symbols);

/// Convenience: the canonical DFA of a regex (Thompson + determinize +
/// minimize), the query representation the paper uses throughout.
Dfa RegexToCanonicalDfa(const RegexPtr& regex, uint32_t num_symbols);

}  // namespace rpqlearn

#endif  // RPQLEARN_REGEX_TO_NFA_H_
