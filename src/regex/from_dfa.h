#ifndef RPQLEARN_REGEX_FROM_DFA_H_
#define RPQLEARN_REGEX_FROM_DFA_H_

#include "automata/dfa.h"
#include "regex/ast.h"

namespace rpqlearn {

/// Converts a DFA to an equivalent regular expression by state elimination
/// (Brzozowski–McCluskey). Used to display learned queries in the paper's
/// regex notation, e.g. the learned DFA of Fig. 6(b) prints as `(a.b)*.c`.
RegexPtr DfaToRegex(const Dfa& dfa);

}  // namespace rpqlearn

#endif  // RPQLEARN_REGEX_FROM_DFA_H_
