#include "regex/printer.h"

#include "util/logging.h"

namespace rpqlearn {
namespace {

/// Binding strength: union < concat < star/atom.
int Precedence(RegexKind kind) {
  switch (kind) {
    case RegexKind::kUnion:
      return 0;
    case RegexKind::kConcat:
      return 1;
    case RegexKind::kStar:
      return 2;
    case RegexKind::kEmptySet:
    case RegexKind::kEpsilon:
    case RegexKind::kSymbol:
      return 3;
  }
  return 3;
}

void Render(const RegexPtr& regex, const Alphabet& alphabet, int parent_prec,
            std::string* out) {
  RPQ_CHECK(regex != nullptr);
  const int prec = Precedence(regex->kind);
  const bool need_parens = prec < parent_prec;
  if (need_parens) *out += "(";
  switch (regex->kind) {
    case RegexKind::kEmptySet:
      *out += "empty";
      break;
    case RegexKind::kEpsilon:
      *out += "eps";
      break;
    case RegexKind::kSymbol:
      *out += alphabet.Name(regex->symbol);
      break;
    case RegexKind::kConcat:
      for (size_t i = 0; i < regex->children.size(); ++i) {
        if (i > 0) *out += ".";
        Render(regex->children[i], alphabet, prec + 1, out);
      }
      break;
    case RegexKind::kUnion:
      for (size_t i = 0; i < regex->children.size(); ++i) {
        if (i > 0) *out += "+";
        Render(regex->children[i], alphabet, prec + 1, out);
      }
      break;
    case RegexKind::kStar:
      Render(regex->children[0], alphabet, prec + 1, out);
      *out += "*";
      break;
  }
  if (need_parens) *out += ")";
}

}  // namespace

std::string RegexToString(const RegexPtr& regex, const Alphabet& alphabet) {
  std::string out;
  Render(regex, alphabet, 0, &out);
  return out;
}

}  // namespace rpqlearn
