#include "regex/parser.h"

#include <cctype>
#include <string>

namespace rpqlearn {
namespace {

/// Recursive-descent parser over a character cursor.
class Parser {
 public:
  Parser(std::string_view text, Alphabet* alphabet)
      : text_(text), alphabet_(alphabet) {}

  StatusOr<RegexPtr> Parse() {
    StatusOr<RegexPtr> result = ParseUnion();
    if (!result.ok()) return result;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("unexpected trailing input");
    }
    return result;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument(message + " at offset " +
                                   std::to_string(pos_) + " in regex '" +
                                   std::string(text_) + "'");
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() && std::isspace(
               static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Peek(char c) {
    SkipWhitespace();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  bool Consume(char c) {
    if (Peek(c)) {
      ++pos_;
      return true;
    }
    return false;
  }

  StatusOr<RegexPtr> ParseUnion() {
    StatusOr<RegexPtr> left = ParseConcat();
    if (!left.ok()) return left;
    RegexPtr result = left.value();
    while (Consume('+') || Consume('|')) {
      StatusOr<RegexPtr> right = ParseConcat();
      if (!right.ok()) return right;
      result = MakeUnion(std::move(result), right.value());
    }
    return result;
  }

  StatusOr<RegexPtr> ParseConcat() {
    StatusOr<RegexPtr> left = ParseStarred();
    if (!left.ok()) return left;
    RegexPtr result = left.value();
    while (Consume('.')) {
      StatusOr<RegexPtr> right = ParseStarred();
      if (!right.ok()) return right;
      result = MakeConcat(std::move(result), right.value());
    }
    return result;
  }

  StatusOr<RegexPtr> ParseStarred() {
    StatusOr<RegexPtr> atom = ParseAtom();
    if (!atom.ok()) return atom;
    RegexPtr result = atom.value();
    while (Consume('*')) {
      result = MakeStar(std::move(result));
    }
    return result;
  }

  StatusOr<RegexPtr> ParseAtom() {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    if (c == '(') {
      ++pos_;
      StatusOr<RegexPtr> inner = ParseUnion();
      if (!inner.ok()) return inner;
      if (!Consume(')')) return Error("expected ')'");
      return inner;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = pos_;
      while (pos_ < text_.size()) {
        char ch = text_[pos_];
        if (std::isalnum(static_cast<unsigned char>(ch)) || ch == '_' ||
            ch == '-') {
          ++pos_;
        } else {
          break;
        }
      }
      std::string_view name = text_.substr(start, pos_ - start);
      if (name == "eps") return MakeEpsilon();
      return MakeSymbol(alphabet_->Intern(name));
    }
    return Error(std::string("unexpected character '") + c + "'");
  }

  std::string_view text_;
  Alphabet* alphabet_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<RegexPtr> ParseRegex(std::string_view text, Alphabet* alphabet) {
  return Parser(text, alphabet).Parse();
}

}  // namespace rpqlearn
