#include "regex/derivatives.h"

#include <algorithm>
#include <deque>
#include <map>
#include <string>

#include "regex/printer.h"
#include "util/logging.h"

namespace rpqlearn {
namespace {

/// Canonical structural key for similarity-dedup of derivative states.
/// Structural equality after the factories' simplifications (flattening,
/// duplicate-union removal, ε/∅ identities) is enough for termination on
/// the regex sizes the library manipulates.
std::string StructuralKey(const RegexPtr& regex) {
  switch (regex->kind) {
    case RegexKind::kEmptySet:
      return "0";
    case RegexKind::kEpsilon:
      return "e";
    case RegexKind::kSymbol:
      return "s" + std::to_string(regex->symbol);
    case RegexKind::kConcat: {
      std::string out = "(.";
      for (const RegexPtr& child : regex->children) {
        out += StructuralKey(child);
      }
      return out + ")";
    }
    case RegexKind::kUnion: {
      // Order-insensitive: unions are sets.
      std::vector<std::string> keys;
      for (const RegexPtr& child : regex->children) {
        keys.push_back(StructuralKey(child));
      }
      std::sort(keys.begin(), keys.end());
      std::string out = "(+";
      for (const std::string& k : keys) out += k;
      return out + ")";
    }
    case RegexKind::kStar:
      return "(*" + StructuralKey(regex->children[0]) + ")";
  }
  return "?";
}

}  // namespace

bool IsNullable(const RegexPtr& regex) {
  RPQ_CHECK(regex != nullptr);
  switch (regex->kind) {
    case RegexKind::kEmptySet:
    case RegexKind::kSymbol:
      return false;
    case RegexKind::kEpsilon:
    case RegexKind::kStar:
      return true;
    case RegexKind::kConcat:
      for (const RegexPtr& child : regex->children) {
        if (!IsNullable(child)) return false;
      }
      return true;
    case RegexKind::kUnion:
      for (const RegexPtr& child : regex->children) {
        if (IsNullable(child)) return true;
      }
      return false;
  }
  return false;
}

RegexPtr Derivative(const RegexPtr& regex, Symbol symbol) {
  RPQ_CHECK(regex != nullptr);
  switch (regex->kind) {
    case RegexKind::kEmptySet:
    case RegexKind::kEpsilon:
      return MakeEmptySet();
    case RegexKind::kSymbol:
      return regex->symbol == symbol ? MakeEpsilon() : MakeEmptySet();
    case RegexKind::kConcat: {
      // ∂a (r1·r2·...·rn) = (∂a r1)·r2·...·rn  +  [r1 nullable](∂a (r2...rn))
      std::vector<RegexPtr> tail(regex->children.begin() + 1,
                                 regex->children.end());
      RegexPtr tail_regex = MakeConcatAll(tail);
      RegexPtr first_part =
          MakeConcat(Derivative(regex->children[0], symbol), tail_regex);
      if (!IsNullable(regex->children[0])) return first_part;
      return MakeUnion(std::move(first_part),
                       Derivative(tail_regex, symbol));
    }
    case RegexKind::kUnion: {
      RegexPtr result = MakeEmptySet();
      for (const RegexPtr& child : regex->children) {
        result = MakeUnion(std::move(result), Derivative(child, symbol));
      }
      return result;
    }
    case RegexKind::kStar:
      // ∂a (r*) = (∂a r)·r*
      return MakeConcat(Derivative(regex->children[0], symbol), regex);
  }
  return MakeEmptySet();
}

StatusOr<Dfa> BrzozowskiConstruct(const RegexPtr& regex, uint32_t num_symbols,
                                  size_t max_states) {
  Dfa dfa(num_symbols);
  std::map<std::string, StateId> states;
  std::deque<RegexPtr> queue;

  auto intern = [&](const RegexPtr& r) -> std::pair<StateId, bool> {
    std::string key = StructuralKey(r);
    auto it = states.find(key);
    if (it != states.end()) return {it->second, false};
    StateId id = dfa.AddState(IsNullable(r));
    states.emplace(std::move(key), id);
    queue.push_back(r);
    return {id, true};
  };

  intern(regex);
  while (!queue.empty()) {
    RegexPtr current = std::move(queue.front());
    queue.pop_front();
    StateId from = states.at(StructuralKey(current));
    for (Symbol a = 0; a < num_symbols; ++a) {
      RegexPtr derived = Derivative(current, a);
      if (derived->kind == RegexKind::kEmptySet) continue;
      if (states.size() >= max_states && !states.count(StructuralKey(derived))) {
        return Status::ResourceExhausted(
            "Brzozowski construction exceeded state cap");
      }
      auto [to, inserted] = intern(derived);
      dfa.SetTransition(from, a, to);
    }
  }
  return dfa;
}

}  // namespace rpqlearn
