#ifndef RPQLEARN_REGEX_PARSER_H_
#define RPQLEARN_REGEX_PARSER_H_

#include <string_view>

#include "automata/alphabet.h"
#include "regex/ast.h"
#include "util/status.h"

namespace rpqlearn {

/// Parses the paper's regex syntax:
///   union  := concat ('+' concat)*            (also '|' as alias)
///   concat := starred ('.' starred)*          (explicit concatenation dot)
///   starred:= atom '*'*
///   atom   := SYMBOL | 'eps' | '(' union ')'
/// SYMBOL is an identifier `[A-Za-z_][A-Za-z0-9_-]*`; symbols are interned
/// into `alphabet`. Whitespace is ignored. Example from the paper:
/// `(tram+bus)*.cinema`.
StatusOr<RegexPtr> ParseRegex(std::string_view text, Alphabet* alphabet);

}  // namespace rpqlearn

#endif  // RPQLEARN_REGEX_PARSER_H_
