#include "regex/ast.h"

#include <algorithm>

namespace rpqlearn {
namespace {

RegexPtr MakeNode(RegexKind kind, Symbol symbol,
                  std::vector<RegexPtr> children) {
  auto node = std::make_shared<RegexNode>();
  node->kind = kind;
  node->symbol = symbol;
  node->children = std::move(children);
  return node;
}

bool IsKind(const RegexPtr& r, RegexKind kind) {
  return r != nullptr && r->kind == kind;
}

}  // namespace

RegexPtr MakeEmptySet() {
  static const RegexPtr instance = MakeNode(RegexKind::kEmptySet, 0, {});
  return instance;
}

RegexPtr MakeEpsilon() {
  static const RegexPtr instance = MakeNode(RegexKind::kEpsilon, 0, {});
  return instance;
}

RegexPtr MakeSymbol(Symbol symbol) {
  return MakeNode(RegexKind::kSymbol, symbol, {});
}

RegexPtr MakeConcat(RegexPtr left, RegexPtr right) {
  if (IsKind(left, RegexKind::kEmptySet) ||
      IsKind(right, RegexKind::kEmptySet)) {
    return MakeEmptySet();
  }
  if (IsKind(left, RegexKind::kEpsilon)) return right;
  if (IsKind(right, RegexKind::kEpsilon)) return left;
  std::vector<RegexPtr> children;
  if (IsKind(left, RegexKind::kConcat)) {
    children = left->children;
  } else {
    children.push_back(std::move(left));
  }
  if (IsKind(right, RegexKind::kConcat)) {
    children.insert(children.end(), right->children.begin(),
                    right->children.end());
  } else {
    children.push_back(std::move(right));
  }
  return MakeNode(RegexKind::kConcat, 0, std::move(children));
}

RegexPtr MakeUnion(RegexPtr left, RegexPtr right) {
  if (IsKind(left, RegexKind::kEmptySet)) return right;
  if (IsKind(right, RegexKind::kEmptySet)) return left;
  std::vector<RegexPtr> children;
  if (IsKind(left, RegexKind::kUnion)) {
    children = left->children;
  } else {
    children.push_back(std::move(left));
  }
  if (IsKind(right, RegexKind::kUnion)) {
    children.insert(children.end(), right->children.begin(),
                    right->children.end());
  } else {
    children.push_back(std::move(right));
  }
  // Collapse structural duplicates to keep unions readable.
  std::vector<RegexPtr> unique;
  for (const RegexPtr& child : children) {
    bool duplicate = false;
    for (const RegexPtr& kept : unique) {
      if (RegexEquals(child, kept)) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) unique.push_back(child);
  }
  if (unique.size() == 1) return unique[0];
  return MakeNode(RegexKind::kUnion, 0, std::move(unique));
}

RegexPtr MakeStar(RegexPtr inner) {
  if (IsKind(inner, RegexKind::kEmptySet) ||
      IsKind(inner, RegexKind::kEpsilon)) {
    return MakeEpsilon();
  }
  if (IsKind(inner, RegexKind::kStar)) return inner;
  return MakeNode(RegexKind::kStar, 0, {std::move(inner)});
}

RegexPtr MakeConcatAll(const std::vector<RegexPtr>& parts) {
  RegexPtr result = MakeEpsilon();
  for (const RegexPtr& part : parts) result = MakeConcat(result, part);
  return result;
}

RegexPtr MakeUnionAll(const std::vector<RegexPtr>& parts) {
  RegexPtr result = MakeEmptySet();
  for (const RegexPtr& part : parts) result = MakeUnion(result, part);
  return result;
}

size_t RegexNodeCount(const RegexPtr& regex) {
  if (regex == nullptr) return 0;
  size_t total = 1;
  for (const RegexPtr& child : regex->children) {
    total += RegexNodeCount(child);
  }
  return total;
}

bool RegexEquals(const RegexPtr& a, const RegexPtr& b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  if (a->kind != b->kind || a->symbol != b->symbol) return false;
  if (a->children.size() != b->children.size()) return false;
  for (size_t i = 0; i < a->children.size(); ++i) {
    if (!RegexEquals(a->children[i], b->children[i])) return false;
  }
  return true;
}

}  // namespace rpqlearn
