#ifndef RPQLEARN_REGEX_PRINTER_H_
#define RPQLEARN_REGEX_PRINTER_H_

#include <string>

#include "automata/alphabet.h"
#include "regex/ast.h"

namespace rpqlearn {

/// Renders a regex in the parser's syntax (round-trippable through
/// ParseRegex): `+` for union, `.` for concatenation, `*` for star, `eps`
/// for ε and `empty` for ∅, with minimal parentheses.
std::string RegexToString(const RegexPtr& regex, const Alphabet& alphabet);

}  // namespace rpqlearn

#endif  // RPQLEARN_REGEX_PRINTER_H_
