#ifndef RPQLEARN_REGEX_DERIVATIVES_H_
#define RPQLEARN_REGEX_DERIVATIVES_H_

#include "automata/dfa.h"
#include "regex/ast.h"
#include "util/status.h"

namespace rpqlearn {

/// True iff ε ∈ L(regex) (the regex is "nullable").
bool IsNullable(const RegexPtr& regex);

/// The Brzozowski derivative ∂a L = { w | a·w ∈ L }, as a simplified regex.
RegexPtr Derivative(const RegexPtr& regex, Symbol symbol);

/// Direct regex → DFA construction by iterated derivatives: states are
/// similarity-classes of derivatives, transitions δ(r, a) = ∂a r, accepting
/// iff nullable. An independent alternative to Thompson + subset
/// construction (cross-checked against it in tests). The structural
/// simplifications in the AST factories keep the derivative set finite in
/// practice; `max_states` guards pathological blowups.
StatusOr<Dfa> BrzozowskiConstruct(const RegexPtr& regex, uint32_t num_symbols,
                                  size_t max_states = 100000);

}  // namespace rpqlearn

#endif  // RPQLEARN_REGEX_DERIVATIVES_H_
