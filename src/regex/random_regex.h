#ifndef RPQLEARN_REGEX_RANDOM_REGEX_H_
#define RPQLEARN_REGEX_RANDOM_REGEX_H_

#include "regex/ast.h"
#include "util/random.h"

namespace rpqlearn {

/// Knobs for random regex generation (property tests).
struct RandomRegexOptions {
  uint32_t num_symbols = 3;
  uint32_t max_depth = 4;
  /// Probability of ε at a leaf.
  double epsilon_probability = 0.1;
};

/// A random regex AST with depth ≤ max_depth over the given alphabet size.
RegexPtr RandomRegex(Rng* rng, const RandomRegexOptions& options);

}  // namespace rpqlearn

#endif  // RPQLEARN_REGEX_RANDOM_REGEX_H_
