#include "regex/to_nfa.h"

#include "automata/minimize.h"
#include "util/logging.h"

namespace rpqlearn {
namespace {

/// A Thompson fragment: entry and exit states within the NFA under
/// construction.
struct Fragment {
  StateId entry;
  StateId exit;
};

Fragment BuildFragment(const RegexPtr& regex, Nfa* nfa) {
  RPQ_CHECK(regex != nullptr);
  switch (regex->kind) {
    case RegexKind::kEmptySet: {
      Fragment f{nfa->AddState(), nfa->AddState()};
      // No transition: the exit is unreachable.
      return f;
    }
    case RegexKind::kEpsilon: {
      Fragment f{nfa->AddState(), nfa->AddState()};
      nfa->AddEpsilonTransition(f.entry, f.exit);
      return f;
    }
    case RegexKind::kSymbol: {
      Fragment f{nfa->AddState(), nfa->AddState()};
      nfa->AddTransition(f.entry, regex->symbol, f.exit);
      return f;
    }
    case RegexKind::kConcat: {
      RPQ_CHECK_GE(regex->children.size(), 2u);
      Fragment first = BuildFragment(regex->children[0], nfa);
      StateId entry = first.entry;
      StateId current_exit = first.exit;
      for (size_t i = 1; i < regex->children.size(); ++i) {
        Fragment next = BuildFragment(regex->children[i], nfa);
        nfa->AddEpsilonTransition(current_exit, next.entry);
        current_exit = next.exit;
      }
      return Fragment{entry, current_exit};
    }
    case RegexKind::kUnion: {
      RPQ_CHECK_GE(regex->children.size(), 2u);
      Fragment f{nfa->AddState(), nfa->AddState()};
      for (const RegexPtr& child : regex->children) {
        Fragment sub = BuildFragment(child, nfa);
        nfa->AddEpsilonTransition(f.entry, sub.entry);
        nfa->AddEpsilonTransition(sub.exit, f.exit);
      }
      return f;
    }
    case RegexKind::kStar: {
      RPQ_CHECK_EQ(regex->children.size(), 1u);
      Fragment f{nfa->AddState(), nfa->AddState()};
      Fragment sub = BuildFragment(regex->children[0], nfa);
      nfa->AddEpsilonTransition(f.entry, sub.entry);
      nfa->AddEpsilonTransition(sub.exit, f.exit);
      nfa->AddEpsilonTransition(f.entry, f.exit);
      nfa->AddEpsilonTransition(sub.exit, sub.entry);
      return f;
    }
  }
  RPQ_CHECK(false) << "unreachable";
  __builtin_unreachable();
}

}  // namespace

Nfa ThompsonConstruct(const RegexPtr& regex, uint32_t num_symbols) {
  Nfa nfa(num_symbols);
  Fragment f = BuildFragment(regex, &nfa);
  nfa.AddInitial(f.entry);
  nfa.SetAccepting(f.exit, true);
  nfa.Finalize();
  return nfa;
}

Dfa RegexToCanonicalDfa(const RegexPtr& regex, uint32_t num_symbols) {
  return CanonicalDfaOf(ThompsonConstruct(regex, num_symbols));
}

}  // namespace rpqlearn
