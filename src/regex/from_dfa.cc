#include "regex/from_dfa.h"

#include <vector>

namespace rpqlearn {

RegexPtr DfaToRegex(const Dfa& input) {
  const Dfa dfa = input.Trimmed();
  const uint32_t n = dfa.num_states();
  // Generalized NFA over states {0..n-1} ∪ {start = n, accept = n+1}.
  const uint32_t total = n + 2;
  const uint32_t start = n;
  const uint32_t accept = n + 1;

  std::vector<RegexPtr> edge(static_cast<size_t>(total) * total,
                             MakeEmptySet());
  auto at = [&](uint32_t i, uint32_t j) -> RegexPtr& {
    return edge[static_cast<size_t>(i) * total + j];
  };

  for (StateId s = 0; s < n; ++s) {
    for (Symbol a = 0; a < dfa.num_symbols(); ++a) {
      StateId t = dfa.Next(s, a);
      if (t != kNoState) {
        at(s, t) = MakeUnion(at(s, t), MakeSymbol(a));
      }
    }
    if (dfa.IsAccepting(s)) at(s, accept) = MakeEpsilon();
  }
  at(start, dfa.initial_state()) = MakeEpsilon();

  // Eliminate original states one by one, greedily picking the state with
  // the smallest in-degree × out-degree product; this keeps the output
  // regex close to the natural factoring (e.g. the learned Fig. 6(b) DFA
  // prints as "(a.b)*.c" rather than "c+a.(b.a)*.b.c").
  std::vector<bool> eliminated(total, false);
  for (uint32_t round = 0; round < n; ++round) {
    uint32_t best = total;
    size_t best_weight = 0;
    for (uint32_t k = 0; k < n; ++k) {
      if (eliminated[k]) continue;
      size_t in_degree = 0;
      size_t out_degree = 0;
      for (uint32_t i = 0; i < total; ++i) {
        if (eliminated[i] || i == k) continue;
        if (at(i, k)->kind != RegexKind::kEmptySet) ++in_degree;
        if (at(k, i)->kind != RegexKind::kEmptySet) ++out_degree;
      }
      size_t weight = in_degree * out_degree;
      if (best == total || weight < best_weight) {
        best = k;
        best_weight = weight;
      }
    }
    uint32_t k = best;
    eliminated[k] = true;
    RegexPtr loop = MakeStar(at(k, k));
    for (uint32_t i = 0; i < total; ++i) {
      if (eliminated[i] || at(i, k)->kind == RegexKind::kEmptySet) continue;
      for (uint32_t j = 0; j < total; ++j) {
        if (eliminated[j] || at(k, j)->kind == RegexKind::kEmptySet) continue;
        RegexPtr path = MakeConcat(MakeConcat(at(i, k), loop), at(k, j));
        at(i, j) = MakeUnion(at(i, j), std::move(path));
      }
    }
  }
  return at(start, accept);
}

}  // namespace rpqlearn
