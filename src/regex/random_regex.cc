#include "regex/random_regex.h"

namespace rpqlearn {
namespace {

RegexPtr Generate(Rng* rng, const RandomRegexOptions& options,
                  uint32_t depth) {
  if (depth >= options.max_depth || rng->NextBernoulli(0.35)) {
    // Leaf.
    if (rng->NextBernoulli(options.epsilon_probability)) {
      return MakeEpsilon();
    }
    return MakeSymbol(
        static_cast<Symbol>(rng->NextBelow(options.num_symbols)));
  }
  switch (rng->NextBelow(3)) {
    case 0:
      return MakeConcat(Generate(rng, options, depth + 1),
                        Generate(rng, options, depth + 1));
    case 1:
      return MakeUnion(Generate(rng, options, depth + 1),
                       Generate(rng, options, depth + 1));
    default:
      return MakeStar(Generate(rng, options, depth + 1));
  }
}

}  // namespace

RegexPtr RandomRegex(Rng* rng, const RandomRegexOptions& options) {
  return Generate(rng, options, 0);
}

}  // namespace rpqlearn
