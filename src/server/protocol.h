#ifndef RPQLEARN_SERVER_PROTOCOL_H_
#define RPQLEARN_SERVER_PROTOCOL_H_

/// The RPQ query server's wire protocol: newline-terminated UTF-8 text
/// lines, one command per line, streamed replies. Everything here is pure
/// (no sockets), so the parser is unit-testable and fuzzable on its own —
/// the protocol-line fuzzer drives ParseCommand and LineBuffer directly as
/// well as through a live server.
///
/// Command grammar (one line each; tokens separated by spaces/tabs; the
/// regex token must be whitespace-free — the regex syntax itself ignores
/// whitespace, so any query can be written that way):
///
///   LOAD <path>                       load an edge-list file (LoadEdgeList)
///   QUERY <regex>                     monadic: nodes selected by the query
///   QUERY <regex> FROM <v> [<v> ...]  binary: (src, dst) pairs per source
///   UPDATE +(<u>,<label>,<v>)         insert edge  u --label--> v
///   UPDATE -(<u>,<label>,<v>)         delete edge  (space-separated
///                                     `UPDATE + <u> <label> <v>` accepted)
///   LEARN <goal-regex> [SEED <n>] [MAX <n>]
///                                     run an interactive-learning session
///                                     against a simulated oracle for the
///                                     goal; replies with the learned query
///   STATS                             server / engine / graph telemetry
///   PING                              liveness check
///   QUIT                              server closes after the reply
///
/// Replies (every command produces exactly one terminal OK/ERR line;
/// streaming payload lines precede it):
///
///   LOAD   -> OK LOAD <nodes> <edges> <symbols>
///   QUERY  -> NODE <v>            per selected node, then  OK QUERY <count>
///          -> PAIR <src> <dst>    per selected pair, then  OK QUERY <count>
///   UPDATE -> OK UPDATE <applied:0|1>
///   LEARN  -> LEARNED <regex-or-null>, then
///             OK LEARN <interactions> <reached_goal:0|1>
///   STATS  -> STAT <key> <value>  per entry, then  OK STATS <count>
///   PING   -> OK PING
///   QUIT   -> OK BYE
///   errors -> ERR <CODE> <message>   (codes: the StatusCode names, e.g.
///             INVALID_ARGUMENT, NOT_FOUND, RESOURCE_EXHAUSTED,
///             DEADLINE_EXCEEDED, CANCELLED, FAILED_PRECONDITION)
///
/// A malformed line is answered with ERR and the connection stays open; an
/// oversized line (no newline within the configured bound) is discarded up
/// to the next newline and answered with ERR. Disconnecting mid-request
/// cancels that request's ExecContext.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace rpqlearn::server {

/// Default bound on one protocol line (command side). Lines longer than
/// this without a newline are rejected without buffering more.
inline constexpr size_t kMaxLineBytes = size_t{1} << 16;

/// One parsed protocol command.
struct Command {
  enum class Kind : uint8_t {
    kLoad = 0,
    kQuery = 1,
    kUpdate = 2,
    kLearn = 3,
    kStats = 4,
    kPing = 5,
    kQuit = 6,
  };
  Kind kind = Kind::kPing;

  /// LOAD: the edge-list path.
  std::string path;
  /// QUERY / LEARN: the (goal) regex text.
  std::string regex;
  /// QUERY: FROM clause present (binary semantics) and its sources.
  bool has_sources = false;
  std::vector<NodeId> sources;
  /// UPDATE: direction and the edge triple (label by name; resolved against
  /// the loaded graph's alphabet at execution time).
  bool insert = true;
  NodeId src = 0;
  NodeId dst = 0;
  std::string label;
  /// LEARN: oracle seed and interaction bound.
  uint64_t seed = 1;
  uint64_t max_interactions = 0;  ///< 0 = server default
};

/// Parses one protocol line (without its newline). InvalidArgument with a
/// human-readable reason on any malformed input; never crashes on arbitrary
/// bytes (the fuzzer's contract).
StatusOr<Command> ParseCommand(std::string_view line);

/// The wire token of a StatusCode ("INVALID_ARGUMENT", ...).
std::string_view StatusCodeToken(StatusCode code);

/// Renders a non-ok Status as one ERR line (newline included); control
/// bytes in the message are replaced so the reply stays one line.
std::string FormatErrorReply(const Status& status);

/// Splits a byte stream into protocol lines under a length bound.
/// Append() buffers arriving bytes; NextLine() yields complete lines with
/// the terminator stripped (both "\n" and "\r\n"). When buffered bytes
/// exceed the bound with no newline, the oversized prefix is dropped, the
/// line is marked oversized (the server answers ERR without ever holding
/// more than the bound), and the remainder up to the next newline is
/// discarded too.
class LineBuffer {
 public:
  explicit LineBuffer(size_t max_line_bytes = kMaxLineBytes)
      : max_line_bytes_(max_line_bytes) {}

  struct Line {
    std::string text;
    /// True: the line exceeded the bound; `text` holds a truncated prefix
    /// for error reporting only and must not be parsed as a command.
    bool oversized = false;
  };

  void Append(std::string_view bytes);

  /// The next complete line, or nullopt when none is buffered yet.
  std::optional<Line> NextLine();

  size_t buffered_bytes() const { return buffer_.size(); }

 private:
  size_t max_line_bytes_;
  std::string buffer_;
  /// Mid-discard of an oversized line: bytes are dropped until the next
  /// newline; the pending oversized Line was already emitted.
  bool discarding_ = false;
};

}  // namespace rpqlearn::server

#endif  // RPQLEARN_SERVER_PROTOCOL_H_
