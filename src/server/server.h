#ifndef RPQLEARN_SERVER_SERVER_H_
#define RPQLEARN_SERVER_SERVER_H_

/// The RPQ query server: a poll()-based event loop serving the wire
/// protocol of server/protocol.h to concurrent non-blocking clients, backed
/// by the Engine facade (src/query/engine.h).
///
/// Threading model (docs/ARCHITECTURE.md, "Query server & engine facade"):
///
///   - One **I/O thread** owns every socket: it accepts connections, splits
///     arriving bytes into protocol lines (LineBuffer), parses them, and
///     enqueues one Request per line onto a global queue. It also flushes
///     reply bytes — workers never touch a socket. A self-pipe wakes the
///     poll loop when a worker has replies ready.
///   - A pool of **executor threads** pops requests and runs them against
///     the server state. Replies are delivered per connection in request
///     order (a per-connection sequence number orders the flush), so
///     pipelined clients read replies in the order they wrote commands.
///     Execution order additionally guarantees per-connection
///     **read-your-writes**: a connection's mutation (LOAD / UPDATE) never
///     starts while that connection has any other request executing, and
///     none of its requests start while its mutation executes — so a
///     pipelined UPDATE-then-QUERY observes its own update. Pure-query
///     pipelines still execute concurrently across the pool.
///
/// State and consistency: the loaded graph lives in a DynamicGraph with an
/// Engine over it. Mutations (LOAD, UPDATE) take the state lock exclusively;
/// QUERY / LEARN / STATS share it. The engine's plan cache and the dynamic
/// graph's maintained snapshots make repeat queries warm.
///
/// Admission control: at most `max_in_flight` requests may be queued or
/// executing; a request arriving beyond that is answered
/// `ERR RESOURCE_EXHAUSTED` without being queued. Each admitted request runs
/// under its own ExecContext, armed with `request_deadline_ms` and cancelled
/// when its client disconnects — a disconnect mid-evaluation trips the
/// engine at its next checkpoint instead of wasting the executor. Every
/// executing request registers its context in a per-connection registry
/// whose lock orders disconnect-time Cancel() against the executor
/// destroying the context, and which cancels all of a connection's
/// concurrently executing requests, not just the latest.
///
/// Request batching: when an executor pops a binary QUERY (FROM sources),
/// it coalesces every queued binary QUERY with the same regex into one
/// QueryPlan::RunBinaryBatch call — the shared evaluation spans request
/// boundaries with its 64-lane source batches. Coalescing never reorders a
/// query past a queued mutation and never reorders two requests of the same
/// connection.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "graph/dynamic.h"
#include "query/engine.h"
#include "server/protocol.h"
#include "util/status.h"

namespace rpqlearn::server {

struct ServerOptions {
  /// TCP port to listen on (loopback only); 0 picks an ephemeral port —
  /// read it back via RpqServer::port().
  uint16_t port = 0;
  /// Executor pool size.
  size_t executors = 2;
  /// Admission bound: requests queued or executing before new ones are
  /// rejected with RESOURCE_EXHAUSTED.
  size_t max_in_flight = 64;
  /// Per-request wall-clock deadline; 0 = none.
  uint32_t request_deadline_ms = 0;
  /// Protocol-line length bound (see LineBuffer).
  size_t max_line_bytes = kMaxLineBytes;
  /// Engine configuration applied to every loaded graph (eval knobs, plan
  /// cache capacity, monadic result caching).
  EngineOptions engine;
  /// Default interaction bound of LEARN sessions (a client MAX clause wins).
  size_t learn_max_interactions = 256;
  /// Test hook: executors sleep this long before running each request, so
  /// tests can deterministically disconnect / pile up a queue mid-request.
  std::chrono::milliseconds execute_delay_for_testing{0};
};

/// Server telemetry, snapshot via RpqServer::counters() and streamed by the
/// STATS command (engine counters ride along there).
struct ServerCounters {
  uint64_t connections_accepted = 0;
  uint64_t lines_received = 0;
  /// Lines rejected before execution: parse failures and oversized lines.
  uint64_t protocol_errors = 0;
  /// Requests rejected by the admission bound.
  uint64_t admission_rejections = 0;
  /// Requests whose client disconnected before execution finished.
  uint64_t cancelled_requests = 0;
  uint64_t loads = 0;
  uint64_t queries = 0;
  uint64_t updates = 0;
  uint64_t learns = 0;
  /// Binary queries executed inside a coalesced batch of size >= 2, and the
  /// number of such batch executions.
  uint64_t batched_requests = 0;
  uint64_t coalesced_batches = 0;
};

class RpqServer {
 public:
  explicit RpqServer(ServerOptions options = {});
  ~RpqServer();

  RpqServer(const RpqServer&) = delete;
  RpqServer& operator=(const RpqServer&) = delete;

  /// Binds, listens, and starts the I/O and executor threads. Status on
  /// socket errors (port in use, ...).
  Status Start();

  /// Stops the loops, closes every connection, joins the threads.
  /// Idempotent; also run by the destructor.
  void Stop();

  /// The bound port (valid after a successful Start()).
  uint16_t port() const { return port_; }

  ServerCounters counters() const;

 private:
  struct Connection;
  struct Request;

  // --- I/O thread ---
  void IoLoop();
  void AcceptPending();
  void ReadFromConnection(const std::shared_ptr<Connection>& conn);
  void FlushToConnection(const std::shared_ptr<Connection>& conn);
  void CloseConnection(const std::shared_ptr<Connection>& conn);
  /// Turns one received line into a queued Request (or an immediate
  /// admission / protocol error reply).
  void EnqueueLine(const std::shared_ptr<Connection>& conn,
                   LineBuffer::Line line);
  void WakeIo();

  // --- executors ---
  void ExecutorLoop();
  /// Index of the first queued request allowed to start under the
  /// per-connection ordering rules (read-your-writes around mutations), or
  /// queue_.size() when none may. Requires queue_mutex_ held.
  size_t FindRunnableLocked() const;
  /// Pops the next runnable request plus any batchable companions (see
  /// batching contract above). Returns false when stopping.
  bool PopRequests(std::vector<std::unique_ptr<Request>>* batch);
  void ExecuteSingle(Request& request);
  void ExecuteBatch(std::vector<std::unique_ptr<Request>>& batch);
  /// Formats and delivers one terminal reply (payload lines already in
  /// `payload`), keeping the per-connection flush order.
  void DeliverReply(Request& request, std::string reply);

  // --- command handlers (executor side) ---
  std::string HandleLoad(const Command& command);
  std::string HandleQuery(const Command& command, ExecContext* exec);
  std::string HandleUpdate(const Command& command);
  std::string HandleLearn(const Command& command, ExecContext* exec);
  std::string HandleStats();

  ServerOptions options_;
  uint16_t port_ = 0;
  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;

  std::atomic<bool> running_{false};

  std::thread io_thread_;
  std::vector<std::thread> executor_threads_;

  /// Guards connections_ (I/O thread owns the sockets; Stop() joins first).
  std::vector<std::shared_ptr<Connection>> connections_;

  /// Request queue + admission accounting.
  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<std::unique_ptr<Request>> queue_;
  size_t executing_ = 0;

  /// Loaded graph + engine; LOAD/UPDATE exclusive, QUERY/LEARN/STATS shared.
  mutable std::shared_mutex state_mutex_;
  std::unique_ptr<DynamicGraph> dynamic_;
  std::unique_ptr<Engine> engine_;

  mutable std::mutex counters_mutex_;
  ServerCounters counters_;
};

}  // namespace rpqlearn::server

#endif  // RPQLEARN_SERVER_SERVER_H_
