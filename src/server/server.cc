#include "server/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <map>
#include <sstream>
#include <utility>

#include "graph/io.h"
#include "interact/oracle.h"
#include "interact/session.h"
#include "regex/from_dfa.h"
#include "regex/printer.h"
#include "util/exec_context.h"

namespace rpqlearn::server {
namespace {

Status Errno(const char* what) {
  return Status::Internal(std::string(what) + ": " + std::strerror(errno));
}

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return Status::Ok();
}

/// True for commands that mutate served state (LOAD, UPDATE): these order
/// strictly against other requests of the same connection.
bool IsMutation(const StatusOr<Command>& command) {
  return command.ok() && (command->kind == Command::Kind::kLoad ||
                          command->kind == Command::Kind::kUpdate);
}

}  // namespace

/// One client socket plus everything ordered around it. The I/O thread owns
/// fd / line buffer / out buffer; executors only touch the reply map (under
/// `mutex`) and the cancellation registry (under `exec_mutex`).
struct RpqServer::Connection {
  int fd = -1;
  LineBuffer lines;
  /// Next sequence number handed to an incoming line.
  uint64_t next_seq = 0;

  /// True once the peer disconnected (or QUIT drained): executors skip
  /// pending work for this connection.
  std::atomic<bool> closed{false};

  /// Cancellation registry: the ExecContexts of this connection's currently
  /// executing requests (several may run at once). Registration, removal,
  /// and disconnect-time Cancel() all happen under `exec_mutex`, and the
  /// executor removes its context before the (stack-allocated) object dies
  /// — so a Cancel() can never touch a destroyed context.
  std::mutex exec_mutex;
  std::vector<ExecContext*> active_execs;

  /// Execution-order accounting, guarded by RpqServer::queue_mutex_: how
  /// many of this connection's requests are executing, and whether one of
  /// them is a mutation. PopRequests consults these to give pipelined
  /// clients read-your-writes (see FindRunnableLocked).
  size_t executing_requests = 0;
  bool executing_mutation = false;

  /// Reply ordering: finished replies wait in `done` until every smaller
  /// sequence number flushed. The I/O thread drains `out`.
  std::mutex mutex;
  std::map<uint64_t, std::string> done;
  uint64_t next_flush_seq = 0;
  std::string out;
  bool close_after_flush = false;

  explicit Connection(size_t max_line_bytes) : lines(max_line_bytes) {}
  ~Connection() {
    if (fd >= 0) ::close(fd);
  }

  void RegisterExec(ExecContext* exec) {
    std::lock_guard<std::mutex> lock(exec_mutex);
    active_execs.push_back(exec);
    // A disconnect between the executor's closed-check and this point has
    // already swept the registry; trip the late arrival here.
    if (closed.load()) exec->Cancel();
  }
  void UnregisterExec(ExecContext* exec) {
    std::lock_guard<std::mutex> lock(exec_mutex);
    active_execs.erase(
        std::find(active_execs.begin(), active_execs.end(), exec));
  }
  void CancelActiveExecs() {
    std::lock_guard<std::mutex> lock(exec_mutex);
    for (ExecContext* exec : active_execs) exec->Cancel();
  }
};

/// One admitted protocol line on its way through the executor pool.
struct RpqServer::Request {
  std::shared_ptr<Connection> conn;
  uint64_t seq = 0;
  /// Parse result: a command to execute, or the error to report.
  StatusOr<Command> command = Status::InvalidArgument("unparsed");
};

RpqServer::RpqServer(ServerOptions options) : options_(std::move(options)) {}

RpqServer::~RpqServer() { Stop(); }

Status RpqServer::Start() {
  if (running_.load()) return Status::FailedPrecondition("already started");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Errno("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status status = Errno("bind");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) < 0 ||
      ::listen(listen_fd_, 64) < 0 || !SetNonBlocking(listen_fd_).ok()) {
    Status status = Errno("listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  port_ = ntohs(addr.sin_port);

  int pipe_fds[2];
  if (::pipe(pipe_fds) < 0) {
    Status status = Errno("pipe");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  (void)SetNonBlocking(wake_read_fd_);
  (void)SetNonBlocking(wake_write_fd_);

  running_.store(true);
  io_thread_ = std::thread([this] { IoLoop(); });
  const size_t executors = std::max<size_t>(1, options_.executors);
  executor_threads_.reserve(executors);
  for (size_t i = 0; i < executors; ++i) {
    executor_threads_.emplace_back([this] { ExecutorLoop(); });
  }
  return Status::Ok();
}

void RpqServer::Stop() {
  if (!running_.exchange(false)) return;
  WakeIo();
  // Take-and-release the queue lock between flipping running_ and
  // notifying: an executor that read running_ == true did so inside its
  // wait predicate while holding this lock, so acquiring it here means that
  // executor has since entered the wait — the notify cannot be lost.
  { std::lock_guard<std::mutex> lock(queue_mutex_); }
  queue_cv_.notify_all();
  if (io_thread_.joinable()) io_thread_.join();
  for (std::thread& t : executor_threads_) {
    if (t.joinable()) t.join();
  }
  executor_threads_.clear();
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    queue_.clear();
  }
  connections_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
  listen_fd_ = wake_read_fd_ = wake_write_fd_ = -1;
}

ServerCounters RpqServer::counters() const {
  std::lock_guard<std::mutex> lock(counters_mutex_);
  return counters_;
}

void RpqServer::WakeIo() {
  const char byte = 1;
  if (wake_write_fd_ >= 0) {
    ssize_t ignored = ::write(wake_write_fd_, &byte, 1);
    (void)ignored;
  }
}

// ------------------------------------------------------------- I/O thread

void RpqServer::IoLoop() {
  while (running_.load()) {
    // Snapshot first: AcceptPending / CloseConnection mutate connections_,
    // and fds[2 + i] must keep lining up with polled[i].
    const std::vector<std::shared_ptr<Connection>> polled = connections_;
    std::vector<pollfd> fds;
    fds.push_back({listen_fd_, POLLIN, 0});
    fds.push_back({wake_read_fd_, POLLIN, 0});
    for (const auto& conn : polled) {
      short events = POLLIN;
      {
        std::lock_guard<std::mutex> lock(conn->mutex);
        if (!conn->out.empty()) events |= POLLOUT;
      }
      fds.push_back({conn->fd, events, 0});
    }

    const int ready = ::poll(fds.data(), fds.size(), /*timeout_ms=*/100);
    if (!running_.load()) break;
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }

    if (fds[1].revents & POLLIN) {
      char drain[256];
      while (::read(wake_read_fd_, drain, sizeof(drain)) > 0) {
      }
    }
    if (fds[0].revents & POLLIN) AcceptPending();

    for (size_t i = 0; i < polled.size(); ++i) {
      const pollfd& pfd = fds[2 + i];
      const auto& conn = polled[i];
      if (conn->closed.load()) continue;
      if (pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) {
        CloseConnection(conn);
        continue;
      }
      if (pfd.revents & POLLIN) ReadFromConnection(conn);
      if (!conn->closed.load() && (pfd.revents & POLLOUT)) {
        FlushToConnection(conn);
      }
    }
    // QUIT / flush completion may leave drained connections to close.
    const std::vector<std::shared_ptr<Connection>> current = connections_;
    for (const auto& conn : current) {
      bool drained_quit = false;
      {
        std::lock_guard<std::mutex> lock(conn->mutex);
        drained_quit = conn->close_after_flush && conn->out.empty() &&
                       conn->done.empty() &&
                       conn->next_flush_seq == conn->next_seq;
      }
      if (drained_quit || conn->closed.load()) CloseConnection(conn);
    }
  }
  // Shutdown: close every socket so clients see EOF.
  for (const auto& conn : connections_) {
    conn->closed.store(true);
    conn->CancelActiveExecs();
  }
}

void RpqServer::AcceptPending() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;
    if (!SetNonBlocking(fd).ok()) {
      ::close(fd);
      continue;
    }
    auto conn = std::make_shared<Connection>(options_.max_line_bytes);
    conn->fd = fd;
    connections_.push_back(std::move(conn));
    std::lock_guard<std::mutex> lock(counters_mutex_);
    ++counters_.connections_accepted;
  }
}

void RpqServer::ReadFromConnection(const std::shared_ptr<Connection>& conn) {
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::read(conn->fd, buffer, sizeof(buffer));
    if (n > 0) {
      conn->lines.Append(std::string_view(buffer, static_cast<size_t>(n)));
      // Chunked appends keep peak buffering near the line bound: oversized
      // prefixes are discarded as they cross it.
      while (std::optional<LineBuffer::Line> line = conn->lines.NextLine()) {
        EnqueueLine(conn, *std::move(line));
      }
      if (static_cast<size_t>(n) < sizeof(buffer)) return;
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    // EOF or hard error: the peer is gone.
    CloseConnection(conn);
    return;
  }
}

void RpqServer::EnqueueLine(const std::shared_ptr<Connection>& conn,
                            LineBuffer::Line line) {
  {
    std::lock_guard<std::mutex> lock(counters_mutex_);
    ++counters_.lines_received;
  }
  auto request = std::make_unique<Request>();
  request->conn = conn;
  request->seq = conn->next_seq++;
  if (line.oversized) {
    request->command = Status::InvalidArgument(
        "line exceeds " + std::to_string(options_.max_line_bytes) +
        " bytes (dropped): " + line.text + "...");
  } else {
    request->command = ParseCommand(line.text);
  }
  if (!request->command.ok()) {
    std::lock_guard<std::mutex> lock(counters_mutex_);
    ++counters_.protocol_errors;
  }

  bool admitted = false;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (queue_.size() + executing_ < options_.max_in_flight) {
      queue_.push_back(std::move(request));
      admitted = true;
    }
  }
  if (admitted) {
    queue_cv_.notify_one();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(counters_mutex_);
    ++counters_.admission_rejections;
  }
  // Rejected: reply inline (the I/O thread owns this connection, so the
  // sequence-ordered flush path is safe to run here).
  Request rejected;
  rejected.conn = conn;
  rejected.seq = request->seq;
  DeliverReply(rejected, FormatErrorReply(Status::ResourceExhausted(
                             "server at max in-flight requests (" +
                             std::to_string(options_.max_in_flight) + ")")));
}

void RpqServer::FlushToConnection(const std::shared_ptr<Connection>& conn) {
  std::string to_write;
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    to_write.swap(conn->out);
  }
  size_t written = 0;
  while (written < to_write.size()) {
    const ssize_t n = ::write(conn->fd, to_write.data() + written,
                              to_write.size() - written);
    if (n > 0) {
      written += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    CloseConnection(conn);
    return;
  }
  if (written < to_write.size()) {
    std::lock_guard<std::mutex> lock(conn->mutex);
    // Preserve order across replies finished while the write was in flight.
    conn->out.insert(0, to_write, written, std::string::npos);
  }
}

void RpqServer::CloseConnection(const std::shared_ptr<Connection>& conn) {
  if (conn->closed.exchange(true)) return;
  // Cancel whatever this client was waiting for; the executor observes the
  // trip at its next engine checkpoint. The registry lock orders this
  // against executor-side context destruction.
  conn->CancelActiveExecs();
  if (conn->fd >= 0) {
    ::close(conn->fd);
    conn->fd = -1;
  }
  connections_.erase(std::remove(connections_.begin(), connections_.end(), conn),
                     connections_.end());
}

// -------------------------------------------------------------- executors

void RpqServer::ExecutorLoop() {
  while (true) {
    std::vector<std::unique_ptr<Request>> batch;
    if (!PopRequests(&batch)) return;
    if (batch.size() == 1) {
      ExecuteSingle(*batch[0]);
    } else {
      ExecuteBatch(batch);
    }
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      executing_ -= batch.size();
      for (const auto& request : batch) {
        Connection* conn = request->conn.get();
        --conn->executing_requests;
        if (IsMutation(request->command)) conn->executing_mutation = false;
      }
    }
    // Completion may unblock both admission (I/O thread) and queued
    // requests of the finished connections (other executors).
    queue_cv_.notify_all();
    WakeIo();
  }
}

size_t RpqServer::FindRunnableLocked() const {
  // Per-connection order: once one request of a connection is passed over,
  // every later one is too. A mutation may not start while its connection
  // has anything executing, and nothing may start while its connection is
  // executing a mutation — together: read-your-writes for pipelined
  // clients, full concurrency for pure-query pipelines.
  std::vector<const Connection*> held;
  for (size_t i = 0; i < queue_.size(); ++i) {
    const Request& request = *queue_[i];
    const Connection* conn = request.conn.get();
    if (std::find(held.begin(), held.end(), conn) != held.end()) continue;
    const bool runnable = IsMutation(request.command)
                              ? request.conn->executing_requests == 0
                              : !request.conn->executing_mutation;
    if (runnable) return i;
    held.push_back(conn);
  }
  return queue_.size();
}

bool RpqServer::PopRequests(std::vector<std::unique_ptr<Request>>* batch) {
  std::unique_lock<std::mutex> lock(queue_mutex_);
  size_t pos = 0;
  queue_cv_.wait(lock, [this, &pos] {
    pos = FindRunnableLocked();
    return pos < queue_.size() || !running_.load();
  });
  if (pos >= queue_.size()) {
    // Stopping: drain FIFO. Connections are closing and replies are moot,
    // so the per-connection constraints no longer apply.
    if (queue_.empty()) return false;
    pos = 0;
  }

  // Connections queued ahead of `pos` must not have later requests pulled
  // forward by the batching scan, and a mutation ahead of `pos` pins every
  // later query behind it.
  bool mutation_ahead = false;
  std::vector<const Connection*> skipped;
  for (size_t i = 0; i < pos; ++i) {
    skipped.push_back(queue_[i]->conn.get());
    mutation_ahead = mutation_ahead || IsMutation(queue_[i]->command);
  }

  batch->push_back(std::move(queue_[pos]));
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(pos));
  const Request& head = *batch->front();

  // Batching: coalesce queued binary QUERYs sharing the head's regex. The
  // scan stops at the first mutation (executing past it would let a query
  // observe a graph state its submission order precedes) and skips at most
  // — never reorders — other requests: once a request of some connection is
  // left in place, later requests of that connection are left too.
  const bool batchable = !mutation_ahead && head.command.ok() &&
                         head.command->kind == Command::Kind::kQuery &&
                         head.command->has_sources;
  if (batchable) {
    for (auto it = queue_.begin() + static_cast<std::ptrdiff_t>(pos);
         it != queue_.end();) {
      Request& candidate = **it;
      if (IsMutation(candidate.command)) break;
      const bool same_shape =
          candidate.command.ok() &&
          candidate.command->kind == Command::Kind::kQuery &&
          candidate.command->has_sources &&
          candidate.command->regex == head.command->regex;
      const Connection* conn = candidate.conn.get();
      const bool conn_held =
          std::find(skipped.begin(), skipped.end(), conn) != skipped.end();
      if (same_shape && !conn_held && !candidate.conn->executing_mutation) {
        batch->push_back(std::move(*it));
        it = queue_.erase(it);
        continue;
      }
      skipped.push_back(conn);
      ++it;
    }
  }

  executing_ += batch->size();
  for (const auto& request : *batch) ++request->conn->executing_requests;
  if (IsMutation(head.command)) {
    batch->front()->conn->executing_mutation = true;
  }
  return true;
}

void RpqServer::ExecuteSingle(Request& request) {
  if (options_.execute_delay_for_testing.count() > 0) {
    std::this_thread::sleep_for(options_.execute_delay_for_testing);
  }
  if (request.conn->closed.load()) {
    std::lock_guard<std::mutex> lock(counters_mutex_);
    ++counters_.cancelled_requests;
    return;
  }
  if (!request.command.ok()) {
    DeliverReply(request, FormatErrorReply(request.command.status()));
    return;
  }
  const Command& command = *request.command;

  ExecContext exec;
  if (options_.request_deadline_ms > 0) {
    exec.set_deadline_after(
        std::chrono::milliseconds(options_.request_deadline_ms));
  }
  request.conn->RegisterExec(&exec);

  std::string reply;
  switch (command.kind) {
    case Command::Kind::kPing:
      reply = "OK PING\n";
      break;
    case Command::Kind::kQuit:
      reply = "OK BYE\n";
      break;
    case Command::Kind::kStats:
      reply = HandleStats();
      break;
    case Command::Kind::kLoad:
      reply = HandleLoad(command);
      break;
    case Command::Kind::kQuery:
      reply = HandleQuery(command, &exec);
      break;
    case Command::Kind::kUpdate:
      reply = HandleUpdate(command);
      break;
    case Command::Kind::kLearn:
      reply = HandleLearn(command, &exec);
      break;
  }

  request.conn->UnregisterExec(&exec);
  if (request.conn->closed.load()) {
    std::lock_guard<std::mutex> lock(counters_mutex_);
    ++counters_.cancelled_requests;
    return;
  }
  if (command.kind == Command::Kind::kQuit) {
    std::lock_guard<std::mutex> lock(request.conn->mutex);
    request.conn->close_after_flush = true;
  }
  DeliverReply(request, std::move(reply));
}

void RpqServer::ExecuteBatch(std::vector<std::unique_ptr<Request>>& batch) {
  if (options_.execute_delay_for_testing.count() > 0) {
    std::this_thread::sleep_for(options_.execute_delay_for_testing);
  }
  {
    std::lock_guard<std::mutex> lock(counters_mutex_);
    counters_.batched_requests += batch.size();
    ++counters_.coalesced_batches;
    counters_.queries += batch.size();
  }

  ExecContext exec;
  if (options_.request_deadline_ms > 0) {
    exec.set_deadline_after(
        std::chrono::milliseconds(options_.request_deadline_ms));
  }
  // Any participant disconnecting cancels the shared evaluation; survivors
  // see ERR CANCELLED and may retry (documented batching trade-off).
  for (const auto& request : batch) {
    request->conn->RegisterExec(&exec);
  }

  std::string error;
  // Per-request slot: an error reply, or an index into `per_request`.
  std::vector<std::string> request_errors(batch.size());
  std::vector<size_t> result_index(batch.size(), SIZE_MAX);
  std::vector<std::vector<std::pair<NodeId, NodeId>>> per_request;
  {
    std::shared_lock<std::shared_mutex> state(state_mutex_);
    if (engine_ == nullptr) {
      error = FormatErrorReply(
          Status::FailedPrecondition("no graph loaded (LOAD first)"));
    } else {
      StatusOr<Engine::PlanPtr> plan =
          engine_->Plan(std::string_view(batch.front()->command->regex));
      if (!plan.ok()) {
        error = FormatErrorReply(plan.status());
      } else {
        // A request with out-of-range sources gets its own error instead of
        // poisoning the whole coalesced evaluation.
        const uint32_t num_nodes = engine_->graph().num_nodes();
        std::vector<std::span<const NodeId>> groups;
        groups.reserve(batch.size());
        for (size_t i = 0; i < batch.size(); ++i) {
          const std::vector<NodeId>& sources = batch[i]->command->sources;
          const bool in_range =
              std::all_of(sources.begin(), sources.end(),
                          [num_nodes](NodeId v) { return v < num_nodes; });
          if (!in_range) {
            request_errors[i] = FormatErrorReply(
                Status::InvalidArgument("source node out of range"));
            continue;
          }
          result_index[i] = groups.size();
          groups.push_back(sources);
        }
        auto split = (*plan)->RunBinaryBatch(groups, &exec);
        if (!split.ok()) {
          error = FormatErrorReply(split.status());
        } else {
          per_request = *std::move(split);
        }
      }
    }
  }

  for (size_t i = 0; i < batch.size(); ++i) {
    Request& request = *batch[i];
    request.conn->UnregisterExec(&exec);
    if (request.conn->closed.load()) {
      std::lock_guard<std::mutex> lock(counters_mutex_);
      ++counters_.cancelled_requests;
      continue;
    }
    if (!error.empty()) {
      DeliverReply(request, error);
      continue;
    }
    if (!request_errors[i].empty()) {
      DeliverReply(request, std::move(request_errors[i]));
      continue;
    }
    const auto& pairs = per_request[result_index[i]];
    std::string reply;
    for (const auto& [src, dst] : pairs) {
      reply += "PAIR " + std::to_string(src) + ' ' + std::to_string(dst) + '\n';
    }
    reply += "OK QUERY " + std::to_string(pairs.size()) + '\n';
    DeliverReply(request, std::move(reply));
  }
}

void RpqServer::DeliverReply(Request& request, std::string reply) {
  const std::shared_ptr<Connection>& conn = request.conn;
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    conn->done.emplace(request.seq, std::move(reply));
    // Move every consecutively-finished reply into the write buffer.
    auto it = conn->done.find(conn->next_flush_seq);
    while (it != conn->done.end()) {
      conn->out += it->second;
      conn->done.erase(it);
      ++conn->next_flush_seq;
      it = conn->done.find(conn->next_flush_seq);
    }
  }
  WakeIo();
}

// ------------------------------------------------------- command handlers

std::string RpqServer::HandleLoad(const Command& command) {
  StatusOr<Graph> loaded = LoadEdgeList(command.path);
  if (!loaded.ok()) return FormatErrorReply(loaded.status());

  std::unique_lock<std::shared_mutex> state(state_mutex_);
  dynamic_ = std::make_unique<DynamicGraph>(*std::move(loaded));
  const EvalOptions& eval = options_.engine.eval;
  if (eval.shards > 1 &&
      EffectiveShardCount(eval, dynamic_->graph().num_nodes()) > 1) {
    dynamic_->MaintainSharding(
        EffectiveShardCount(eval, dynamic_->graph().num_nodes()));
  }
  if (eval.condense != CondenseMode::kOff) dynamic_->MaintainCondensation();
  engine_ = std::make_unique<Engine>(*dynamic_, options_.engine);
  {
    std::lock_guard<std::mutex> lock(counters_mutex_);
    ++counters_.loads;
  }
  const Graph& graph = dynamic_->graph();
  return "OK LOAD " + std::to_string(graph.num_nodes()) + ' ' +
         std::to_string(graph.num_edges()) + ' ' +
         std::to_string(graph.num_symbols()) + '\n';
}

std::string RpqServer::HandleQuery(const Command& command, ExecContext* exec) {
  std::shared_lock<std::shared_mutex> state(state_mutex_);
  if (engine_ == nullptr) {
    return FormatErrorReply(
        Status::FailedPrecondition("no graph loaded (LOAD first)"));
  }
  {
    std::lock_guard<std::mutex> lock(counters_mutex_);
    ++counters_.queries;
  }
  StatusOr<Engine::PlanPtr> plan =
      engine_->Plan(std::string_view(command.regex));
  if (!plan.ok()) return FormatErrorReply(plan.status());

  if (command.has_sources) {
    for (NodeId source : command.sources) {
      if (source >= engine_->graph().num_nodes()) {
        return FormatErrorReply(Status::InvalidArgument(
            "source node " + std::to_string(source) + " out of range"));
      }
    }
    auto pairs = (*plan)->RunBinary(command.sources, exec);
    if (!pairs.ok()) return FormatErrorReply(pairs.status());
    std::string reply;
    for (const auto& [src, dst] : *pairs) {
      reply += "PAIR " + std::to_string(src) + ' ' + std::to_string(dst) + '\n';
    }
    reply += "OK QUERY " + std::to_string(pairs->size()) + '\n';
    return reply;
  }

  StatusOr<MonadicNodes> nodes = (*plan)->RunMonadic(exec);
  if (!nodes.ok()) return FormatErrorReply(nodes.status());
  std::string reply;
  size_t count = 0;
  for (NodeId v = 0; v < engine_->graph().num_nodes(); ++v) {
    if ((*nodes)->Test(v)) {
      reply += "NODE " + std::to_string(v) + '\n';
      ++count;
    }
  }
  reply += "OK QUERY " + std::to_string(count) + '\n';
  return reply;
}

std::string RpqServer::HandleUpdate(const Command& command) {
  std::unique_lock<std::shared_mutex> state(state_mutex_);
  if (dynamic_ == nullptr) {
    return FormatErrorReply(
        Status::FailedPrecondition("no graph loaded (LOAD first)"));
  }
  const Graph& graph = dynamic_->graph();
  if (command.src >= graph.num_nodes() || command.dst >= graph.num_nodes()) {
    return FormatErrorReply(Status::InvalidArgument(
        "edge endpoint out of range (graph has " +
        std::to_string(graph.num_nodes()) + " nodes)"));
  }
  StatusOr<Symbol> symbol = graph.alphabet().Find(command.label);
  if (!symbol.ok()) {
    return FormatErrorReply(Status::NotFound(
        "label not in the loaded graph's alphabet: " + command.label));
  }
  const bool applied =
      command.insert ? dynamic_->InsertEdge(command.src, *symbol, command.dst)
                     : dynamic_->DeleteEdge(command.src, *symbol, command.dst);
  {
    std::lock_guard<std::mutex> lock(counters_mutex_);
    ++counters_.updates;
  }
  return "OK UPDATE " + std::to_string(applied ? 1 : 0) + '\n';
}

std::string RpqServer::HandleLearn(const Command& command, ExecContext* exec) {
  std::shared_lock<std::shared_mutex> state(state_mutex_);
  if (engine_ == nullptr) {
    return FormatErrorReply(
        Status::FailedPrecondition("no graph loaded (LOAD first)"));
  }
  {
    std::lock_guard<std::mutex> lock(counters_mutex_);
    ++counters_.learns;
  }
  StatusOr<Engine::PlanPtr> goal =
      engine_->Plan(std::string_view(command.regex));
  if (!goal.ok()) return FormatErrorReply(goal.status());

  const StatusOr<EvalOptions>& base = engine_->eval_options();
  if (!base.ok()) return FormatErrorReply(base.status());
  EvalOptions eval = *base;
  eval.exec = exec;

  StatusOr<Oracle> oracle =
      Oracle::TryFromQuery(engine_->graph(), (*goal)->dfa(), eval);
  if (!oracle.ok()) return FormatErrorReply(oracle.status());

  SessionOptions session;
  session.eval = eval;
  session.seed = command.seed;
  session.max_interactions = command.max_interactions > 0
                                 ? command.max_interactions
                                 : options_.learn_max_interactions;
  SessionResult result =
      RunInteractiveSession(engine_->graph(), *oracle, session);
  if (!result.status.ok()) return FormatErrorReply(result.status);

  std::string learned = "null";
  if (!result.final_query.IsEmptyLanguage()) {
    learned = RegexToString(DfaToRegex(result.final_query),
                            engine_->graph().alphabet());
  }
  return "LEARNED " + learned + "\nOK LEARN " +
         std::to_string(result.interactions.size()) + ' ' +
         (result.reached_goal ? "1" : "0") + '\n';
}

std::string RpqServer::HandleStats() {
  std::ostringstream out;
  size_t entries = 0;
  auto stat = [&out, &entries](std::string_view key, uint64_t value) {
    out << "STAT " << key << ' ' << value << '\n';
    ++entries;
  };

  {
    ServerCounters server = counters();
    stat("server.connections_accepted", server.connections_accepted);
    stat("server.lines_received", server.lines_received);
    stat("server.protocol_errors", server.protocol_errors);
    stat("server.admission_rejections", server.admission_rejections);
    stat("server.cancelled_requests", server.cancelled_requests);
    stat("server.loads", server.loads);
    stat("server.queries", server.queries);
    stat("server.updates", server.updates);
    stat("server.learns", server.learns);
    stat("server.batched_requests", server.batched_requests);
    stat("server.coalesced_batches", server.coalesced_batches);
  }

  std::shared_lock<std::shared_mutex> state(state_mutex_);
  if (engine_ != nullptr) {
    const EngineCounters engine = engine_->counters();
    stat("engine.plan_hits", engine.plan_hits);
    stat("engine.plan_misses", engine.plan_misses);
    stat("engine.plan_evictions", engine.plan_evictions);
    stat("engine.snapshot_builds", engine.snapshot_builds);
    stat("engine.runs", engine.runs);
    stat("engine.monadic_warm_hits", engine.monadic_warm_hits);
  }
  if (dynamic_ != nullptr) {
    const Graph& graph = dynamic_->graph();
    stat("graph.nodes", graph.num_nodes());
    stat("graph.edges", graph.num_edges());
    stat("graph.symbols", graph.num_symbols());
    stat("graph.version", graph.version());
    const MaintenanceStats& maintenance = dynamic_->stats();
    stat("graph.maintained_inserts", maintenance.inserts);
    stat("graph.maintained_deletes", maintenance.deletes);
    stat("graph.rejected_updates", maintenance.rejected_updates);
  }
  out << "OK STATS " << entries << '\n';
  return out.str();
}

}  // namespace rpqlearn::server
