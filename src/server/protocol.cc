#include "server/protocol.h"

#include <algorithm>
#include <cstdlib>
#include <span>

namespace rpqlearn::server {
namespace {

/// Splits on runs of spaces/tabs; no empty tokens.
std::vector<std::string_view> Tokenize(std::string_view line) {
  std::vector<std::string_view> tokens;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    size_t begin = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > begin) tokens.push_back(line.substr(begin, i - begin));
  }
  return tokens;
}

/// Whole-token unsigned parse with an inclusive cap; Status on anything
/// else (sign, overflow, trailing bytes, empty).
StatusOr<uint64_t> ParseUnsigned(std::string_view token, uint64_t max_value,
                                 const char* what) {
  if (token.empty() || token.size() > 20) {
    return Status::InvalidArgument(std::string("malformed ") + what);
  }
  uint64_t value = 0;
  for (char c : token) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument(std::string("malformed ") + what + ": " +
                                     std::string(token));
    }
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (max_value - digit) / 10) {
      return Status::InvalidArgument(std::string(what) + " out of range: " +
                                     std::string(token));
    }
    value = value * 10 + digit;
  }
  return value;
}

StatusOr<NodeId> ParseNode(std::string_view token) {
  StatusOr<uint64_t> value = ParseUnsigned(token, UINT32_MAX, "node id");
  if (!value.ok()) return value.status();
  return static_cast<NodeId>(*value);
}

/// UPDATE edge triple: either the compact `(<u>,<label>,<v>)` form in one
/// token or three separate tokens.
Status ParseUpdateTriple(std::span<const std::string_view> tokens,
                         Command* command) {
  std::string_view fields[3];
  if (tokens.size() == 1 && tokens[0].size() >= 2 &&
      tokens[0].front() == '(' && tokens[0].back() == ')') {
    std::string_view inner = tokens[0].substr(1, tokens[0].size() - 2);
    const size_t first = inner.find(',');
    const size_t last = inner.rfind(',');
    if (first == std::string_view::npos || first == last) {
      return Status::InvalidArgument(
          "UPDATE expects (<u>,<label>,<v>): " + std::string(tokens[0]));
    }
    fields[0] = inner.substr(0, first);
    fields[1] = inner.substr(first + 1, last - first - 1);
    fields[2] = inner.substr(last + 1);
  } else if (tokens.size() == 3) {
    fields[0] = tokens[0];
    fields[1] = tokens[1];
    fields[2] = tokens[2];
  } else {
    return Status::InvalidArgument(
        "UPDATE expects +/-(<u>,<label>,<v>) or +/- <u> <label> <v>");
  }
  StatusOr<NodeId> src = ParseNode(fields[0]);
  if (!src.ok()) return src.status();
  StatusOr<NodeId> dst = ParseNode(fields[2]);
  if (!dst.ok()) return dst.status();
  if (fields[1].empty()) {
    return Status::InvalidArgument("UPDATE label must be non-empty");
  }
  command->src = *src;
  command->dst = *dst;
  command->label = std::string(fields[1]);
  return Status::Ok();
}

}  // namespace

StatusOr<Command> ParseCommand(std::string_view line) {
  const std::vector<std::string_view> tokens = Tokenize(line);
  if (tokens.empty()) {
    return Status::InvalidArgument("empty command line");
  }
  Command command;
  const std::string_view verb = tokens[0];

  if (verb == "PING") {
    if (tokens.size() != 1) {
      return Status::InvalidArgument("PING takes no arguments");
    }
    command.kind = Command::Kind::kPing;
    return command;
  }
  if (verb == "QUIT") {
    if (tokens.size() != 1) {
      return Status::InvalidArgument("QUIT takes no arguments");
    }
    command.kind = Command::Kind::kQuit;
    return command;
  }
  if (verb == "STATS") {
    if (tokens.size() != 1) {
      return Status::InvalidArgument("STATS takes no arguments");
    }
    command.kind = Command::Kind::kStats;
    return command;
  }
  if (verb == "LOAD") {
    if (tokens.size() != 2) {
      return Status::InvalidArgument("LOAD expects exactly one path");
    }
    command.kind = Command::Kind::kLoad;
    command.path = std::string(tokens[1]);
    return command;
  }
  if (verb == "QUERY") {
    if (tokens.size() < 2) {
      return Status::InvalidArgument("QUERY expects a regex");
    }
    command.kind = Command::Kind::kQuery;
    command.regex = std::string(tokens[1]);
    if (tokens.size() > 2) {
      if (tokens[2] != "FROM" || tokens.size() < 4) {
        return Status::InvalidArgument(
            "QUERY expects `QUERY <regex> [FROM <v> ...]` "
            "(the regex must be one whitespace-free token)");
      }
      command.has_sources = true;
      for (size_t i = 3; i < tokens.size(); ++i) {
        StatusOr<NodeId> source = ParseNode(tokens[i]);
        if (!source.ok()) return source.status();
        command.sources.push_back(*source);
      }
    }
    return command;
  }
  if (verb == "UPDATE") {
    if (tokens.size() < 2 || tokens[1].empty() ||
        (tokens[1][0] != '+' && tokens[1][0] != '-')) {
      return Status::InvalidArgument(
          "UPDATE expects +/-(<u>,<label>,<v>) or +/- <u> <label> <v>");
    }
    command.kind = Command::Kind::kUpdate;
    command.insert = tokens[1][0] == '+';
    std::vector<std::string_view> rest(tokens.begin() + 2, tokens.end());
    if (tokens[1].size() > 1) {
      // Compact form: the triple is attached to the sign token.
      rest.insert(rest.begin(), tokens[1].substr(1));
    }
    Status triple = ParseUpdateTriple(rest, &command);
    if (!triple.ok()) return triple;
    return command;
  }
  if (verb == "LEARN") {
    if (tokens.size() < 2) {
      return Status::InvalidArgument("LEARN expects a goal regex");
    }
    command.kind = Command::Kind::kLearn;
    command.regex = std::string(tokens[1]);
    size_t i = 2;
    while (i < tokens.size()) {
      if (tokens[i] == "SEED" && i + 1 < tokens.size()) {
        StatusOr<uint64_t> seed =
            ParseUnsigned(tokens[i + 1], UINT64_MAX / 16, "seed");
        if (!seed.ok()) return seed.status();
        command.seed = *seed;
        i += 2;
      } else if (tokens[i] == "MAX" && i + 1 < tokens.size()) {
        StatusOr<uint64_t> max =
            ParseUnsigned(tokens[i + 1], UINT64_MAX / 16, "interaction bound");
        if (!max.ok()) return max.status();
        command.max_interactions = *max;
        i += 2;
      } else {
        return Status::InvalidArgument(
            "LEARN expects `LEARN <goal-regex> [SEED <n>] [MAX <n>]`");
      }
    }
    return command;
  }
  return Status::InvalidArgument("unknown command: " + std::string(verb));
}

std::string_view StatusCodeToken(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kAbstain:
      return "ABSTAIN";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kCancelled:
      return "CANCELLED";
    default:
      return "UNKNOWN";
  }
}

std::string FormatErrorReply(const Status& status) {
  std::string reply = "ERR ";
  reply += StatusCodeToken(status.code());
  reply += ' ';
  for (char c : status.message()) {
    reply += (c == '\n' || c == '\r') ? ' ' : c;
  }
  reply += '\n';
  return reply;
}

void LineBuffer::Append(std::string_view bytes) {
  buffer_.append(bytes.data(), bytes.size());
}

std::optional<LineBuffer::Line> LineBuffer::NextLine() {
  for (;;) {
    const size_t newline = buffer_.find('\n');
    if (newline == std::string::npos) {
      if (buffer_.size() <= max_line_bytes_) return std::nullopt;
      // Over the bound with no terminator: drop what is buffered, emit one
      // oversized marker (unless this tail belongs to a line already
      // reported), and keep discarding until the next newline arrives.
      const bool report = !discarding_;
      Line line;
      if (report) {
        line.oversized = true;
        line.text = buffer_.substr(0, std::min<size_t>(64, buffer_.size()));
      }
      buffer_.clear();
      discarding_ = true;
      if (report) return line;
      return std::nullopt;
    }
    std::string text = buffer_.substr(0, newline);
    buffer_.erase(0, newline + 1);
    if (discarding_) {
      // The tail of an oversized line: swallow it and keep scanning.
      discarding_ = false;
      continue;
    }
    if (!text.empty() && text.back() == '\r') text.pop_back();
    if (text.size() > max_line_bytes_) {
      Line line;
      line.oversized = true;
      line.text = text.substr(0, 64);
      return line;
    }
    return {Line{std::move(text), false}};
  }
}

}  // namespace rpqlearn::server
