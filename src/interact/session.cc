#include "interact/session.h"

#include <optional>

#include "learn/incremental.h"
#include "query/engine.h"
#include "query/eval.h"
#include "query/metrics.h"
#include "util/exec_context.h"
#include "util/logging.h"
#include "util/timer.h"

namespace rpqlearn {

SessionResult RunInteractiveSession(const Graph& graph, const Oracle& oracle,
                                    const SessionOptions& options) {
  SessionResult result;
  Rng rng(options.seed);
  uint32_t k = options.k_start;
  bool have_query = false;

  // Engine facade for the per-interaction hypothesis evaluations. The
  // learner's hypotheses recur as labels arrive (a negative often sends it
  // back to an earlier query), and the session graph never mutates, so a
  // repeat hypothesis hits the engine's plan cache and is answered from the
  // plan's retained monadic fixed point without any sweep. The engine also
  // owns the graph-only evaluation structures the options may call for (the
  // node-range partition, the per-label SCC condensation), building each
  // lazily once instead of per call. Results are bit-identical to
  // EvalMonadic — plans and snapshots are pure reuse.
  ExecContext* exec = options.eval.exec;
  EngineOptions engine_options;
  engine_options.eval = options.eval;
  Engine engine(graph, engine_options);

  // Incremental learner: SCPs and coverage automata are cached across
  // interactions and only revalidated when negatives arrive.
  LearnerOptions learner_options = options.learner;
  learner_options.auto_k = false;  // the session drives k itself (Sec. 5.1)
  learner_options.exec = exec;  // one context governs the whole session
  IncrementalLearner learner(graph, learner_options);

  // Reruns the learner at the current k; returns the F1 against the goal,
  // or -1 when the learner abstained. A trip anywhere inside (merge trials,
  // hypothesis evaluation, F1 scoring) lands in result.status, which the
  // interaction loop tests after every call.
  auto relearn = [&](uint32_t current_k) -> double {
    LearnOutcome outcome = learner.LearnAtK(current_k);
    if (!outcome.status.ok()) {
      result.status = outcome.status;
      return -1.0;
    }
    if (outcome.is_null) return -1.0;
    result.final_query = outcome.query;
    have_query = true;
    StatusOr<Engine::PlanPtr> plan = engine.Plan(result.final_query);
    if (!plan.ok()) {
      result.status = plan.status();
      return -1.0;
    }
    StatusOr<MonadicNodes> selected = (*plan)->RunMonadic();
    if (!selected.ok()) {
      result.status = selected.status();
      return -1.0;
    }
    return ComputeMetrics(**selected, oracle.goal()).f1;
  };

  while (result.interactions.size() < options.max_interactions) {
    // One checkpoint per interaction, on top of the finer-grained ones the
    // learner and evaluator run themselves.
    if (exec != nullptr && !exec->Checkpoint()) {
      result.status = exec->TripStatus();
      break;
    }
    WallTimer timer;

    // The coverage automaton at the session's k, shared between the
    // strategy and the learner.
    const SubsetCoverage* coverage = learner.CoverageAtK(k);
    if (coverage == nullptr) break;  // resource cap: halt with current query
    BitVector informative = ComputeKInformative(graph, *coverage);

    std::optional<NodeId> next =
        PickNextNode(graph, learner.sample(), *coverage, informative,
                     options.strategy, &rng);
    if (!next.has_value()) {
      // No k-informative node: increase k (Sec. 5.1) or halt. Relearning at
      // the larger k may already reach the goal (longer SCPs become
      // available) without any further label.
      if (k < options.k_max) {
        ++k;
        const double f1 = relearn(k);
        if (!result.status.ok()) break;
        if (f1 == 1.0) {
          result.reached_goal = true;
          break;
        }
        continue;
      }
      break;
    }

    InteractionRecord record;
    record.node = *next;
    record.positive = oracle.Label(*next);
    if (record.positive) {
      learner.AddPositive(*next);
    } else {
      learner.AddNegative(*next);
    }

    // Relearn from all labels (step 6 of Fig. 9).
    if (result.interactions.size() % options.learn_every == 0) {
      record.f1 = relearn(k);
    }

    record.seconds = timer.ElapsedSeconds();
    result.interactions.push_back(record);

    if (!result.status.ok()) break;  // tripped during this relearn
    if (record.f1 == 1.0) {
      result.reached_goal = true;
      break;
    }
  }

  result.final_k = k;
  result.label_fraction =
      graph.num_nodes() == 0
          ? 0.0
          : static_cast<double>(learner.sample().size()) / graph.num_nodes();
  if (!have_query) {
    // Represent "nothing learned" as the empty-language query.
    Dfa empty(graph.num_symbols());
    empty.AddState(false);
    result.final_query = empty;
  }
  return result;
}

}  // namespace rpqlearn
