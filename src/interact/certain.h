#ifndef RPQLEARN_INTERACT_CERTAIN_H_
#define RPQLEARN_INTERACT_CERTAIN_H_

#include "graph/graph.h"
#include "learn/sample.h"
#include "util/status.h"

namespace rpqlearn {

/// Certain-node checks (Lemma 4.1). A node is certain when labeling it adds
/// no information: every consistent query agrees on it. Both checks reduce
/// to NFA language inclusion, hence are PSPACE-complete in general
/// (Lemma 4.2) — the underlying antichain search is capped and may return
/// ResourceExhausted.

/// ν ∈ Cert−(G, S) iff paths_G(ν) ⊆ paths_G(S−).
StatusOr<bool> IsCertainNegative(const Graph& graph, const Sample& sample,
                                 NodeId v, size_t max_explored = 500000);

/// ν ∈ Cert+(G, S) iff ∃ν' ∈ S+ with
/// paths_G(ν') ⊆ paths_G(S−) ∪ paths_G(ν)  (= paths_G(S− ∪ {ν})).
StatusOr<bool> IsCertainPositive(const Graph& graph, const Sample& sample,
                                 NodeId v, size_t max_explored = 500000);

/// An unlabeled node is informative iff it is neither certain-positive nor
/// certain-negative (Sec. 4.2). Exact but potentially exponential; the
/// interactive loop uses the k-bounded approximation instead
/// (ComputeKInformative).
StatusOr<bool> IsInformativeExact(const Graph& graph, const Sample& sample,
                                  NodeId v, size_t max_explored = 500000);

}  // namespace rpqlearn

#endif  // RPQLEARN_INTERACT_CERTAIN_H_
