#include "interact/certain.h"

#include "automata/inclusion.h"
#include "graph/graph_nfa.h"

namespace rpqlearn {

StatusOr<bool> IsCertainNegative(const Graph& graph, const Sample& sample,
                                 NodeId v, size_t max_explored) {
  Nfa node_nfa = GraphToNfa(graph, {v});
  Nfa negatives = GraphToNfa(graph, sample.negative);
  StatusOr<InclusionResult> result =
      CheckLanguageInclusion(node_nfa, negatives, max_explored);
  if (!result.ok()) return result.status();
  return result->included;
}

StatusOr<bool> IsCertainPositive(const Graph& graph, const Sample& sample,
                                 NodeId v, size_t max_explored) {
  // paths(S−) ∪ paths(ν) = paths(S− ∪ {ν}) because all graph-NFA states are
  // accepting.
  std::vector<NodeId> initial = sample.negative;
  initial.push_back(v);
  Nfa cover = GraphToNfa(graph, initial);
  for (NodeId pos : sample.positive) {
    Nfa pos_nfa = GraphToNfa(graph, {pos});
    StatusOr<InclusionResult> result =
        CheckLanguageInclusion(pos_nfa, cover, max_explored);
    if (!result.ok()) return result.status();
    if (result->included) return true;
  }
  return false;
}

StatusOr<bool> IsInformativeExact(const Graph& graph, const Sample& sample,
                                  NodeId v, size_t max_explored) {
  StatusOr<bool> neg = IsCertainNegative(graph, sample, v, max_explored);
  if (!neg.ok()) return neg.status();
  if (*neg) return false;
  StatusOr<bool> pos = IsCertainPositive(graph, sample, v, max_explored);
  if (!pos.ok()) return pos.status();
  return !*pos;
}

}  // namespace rpqlearn
