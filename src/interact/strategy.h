#ifndef RPQLEARN_INTERACT_STRATEGY_H_
#define RPQLEARN_INTERACT_STRATEGY_H_

#include <optional>

#include "graph/graph.h"
#include "interact/informative.h"
#include "learn/coverage.h"
#include "learn/sample.h"
#include "util/bit_vector.h"
#include "util/random.h"

namespace rpqlearn {

/// The two practical node-proposal strategies of Sec. 4.2.
enum class StrategyKind {
  /// kR: a uniformly random k-informative unlabeled node.
  kRandom,
  /// kS: the k-informative unlabeled node with the smallest number of
  /// non-covered k-paths (ties broken by node id), favoring nodes whose SCP
  /// computation has the smallest solution space.
  kSmallestPaths,
};

/// Picks the next node to present to the user, or nullopt if no unlabeled
/// node is k-informative (the caller then increases k or halts).
/// `informative` must come from ComputeKInformative at the same coverage.
std::optional<NodeId> PickNextNode(const Graph& graph, const Sample& sample,
                                   const SubsetCoverage& coverage,
                                   const BitVector& informative,
                                   StrategyKind kind, Rng* rng);

}  // namespace rpqlearn

#endif  // RPQLEARN_INTERACT_STRATEGY_H_
