#ifndef RPQLEARN_INTERACT_SESSION_H_
#define RPQLEARN_INTERACT_SESSION_H_

#include <vector>

#include "automata/dfa.h"
#include "graph/graph.h"
#include "interact/oracle.h"
#include "interact/strategy.h"
#include "learn/learner.h"
#include "learn/sample.h"
#include "util/status.h"

namespace rpqlearn {

/// Knobs of the interactive scenario (Fig. 9 of the paper).
struct SessionOptions {
  StrategyKind strategy = StrategyKind::kRandom;
  /// Dynamic k (Sec. 5.1): start at k_start; when no unlabeled node is
  /// k-informative, increase k up to k_max before halting.
  uint32_t k_start = 2;
  uint32_t k_max = 8;
  /// Safety bound on the number of interactions.
  size_t max_interactions = 100000;
  /// Learner configuration used after every label.
  LearnerOptions learner;
  /// Evaluation knobs (thread count, direction mode, node-range shard
  /// count) for the per-interaction F1 scoring. When `eval.exec` is set,
  /// the same ExecContext governs the whole session: one checkpoint per
  /// interaction, plus the finer-grained checkpoints inside every learner
  /// rerun and evaluation. A trip halts the session cleanly with the typed
  /// Status in SessionResult.status and whatever query was learned so far.
  EvalOptions eval;
  /// Seed for the strategy's randomness.
  uint64_t seed = 1;
  /// Run the learner (and the F1-halt test) only every `learn_every`
  /// interactions; 1 = the paper's loop.
  size_t learn_every = 1;
};

/// One user interaction (steps 3–6 of Fig. 9).
struct InteractionRecord {
  NodeId node = 0;
  bool positive = false;
  /// Wall time to choose the node, query the user, and relearn.
  double seconds = 0.0;
  /// F1 of the learned query vs the goal after this interaction (-1 when
  /// the learner abstained or was skipped this round).
  double f1 = -1.0;
};

/// Result of a full interactive session.
struct SessionResult {
  std::vector<InteractionRecord> interactions;
  /// Last non-null learned query (empty-language DFA if always null).
  Dfa final_query{0};
  /// True iff the halt condition "learned query selects exactly the goal
  /// set" (F1 = 1) was reached.
  bool reached_goal = false;
  /// Final k in use when the session stopped.
  uint32_t final_k = 0;
  /// Fraction of graph nodes labeled.
  double label_fraction = 0.0;
  /// Ok for a normal halt (goal reached, no informative node, or the
  /// interaction budget). Carries the typed trip Status when
  /// SessionOptions.eval.exec tripped mid-session; interactions recorded
  /// before the trip are kept.
  Status status = Status::Ok();
};

/// Runs the interactive scenario: starting from an empty sample, repeatedly
/// pick a k-informative node by the strategy, ask the oracle for its label,
/// relearn, and stop when the learned query is indistinguishable from the
/// goal on the graph (F1 = 1), no informative node remains at k_max, or the
/// interaction budget is exhausted.
SessionResult RunInteractiveSession(const Graph& graph, const Oracle& oracle,
                                    const SessionOptions& options);

}  // namespace rpqlearn

#endif  // RPQLEARN_INTERACT_SESSION_H_
