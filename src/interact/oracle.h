#ifndef RPQLEARN_INTERACT_ORACLE_H_
#define RPQLEARN_INTERACT_ORACLE_H_

#include <utility>

#include "automata/dfa.h"
#include "graph/graph.h"
#include "query/eval.h"
#include "util/bit_vector.h"
#include "util/logging.h"

namespace rpqlearn {

/// Simulated user of the interactive scenario (Sec. 4.1 / Sec. 5.3): labels
/// a node positively iff the goal query selects it. The experiments assume
/// the user labels consistently with a goal query; this class is that
/// assumption made executable.
class Oracle {
 public:
  /// From a precomputed goal result set.
  explicit Oracle(BitVector goal) : goal_(std::move(goal)) {}

  /// Evaluates the goal query on the graph once and labels from the result.
  /// `eval` selects the evaluation thread and shard counts; invalid options
  /// abort (the simulated user is experiment harness code, not a fallible
  /// API).
  static Oracle FromQuery(const Graph& graph, const Dfa& goal_query,
                          const EvalOptions& eval = {}) {
    StatusOr<Oracle> oracle = TryFromQuery(graph, goal_query, eval);
    RPQ_CHECK(oracle.ok()) << oracle.status().ToString();
    return *std::move(oracle);
  }

  /// Fallible variant of FromQuery for callers that carry an ExecContext in
  /// `eval` (or otherwise expect evaluation to fail): the goal evaluation's
  /// trip Status propagates instead of aborting the process.
  static StatusOr<Oracle> TryFromQuery(const Graph& graph,
                                       const Dfa& goal_query,
                                       const EvalOptions& eval = {}) {
    StatusOr<BitVector> goal = EvalMonadic(graph, goal_query, eval);
    if (!goal.ok()) return goal.status();
    return Oracle(*std::move(goal));
  }

  /// The user's answer for node `v`: true = positive example.
  bool Label(NodeId v) const { return goal_.Test(v); }

  /// The full goal result set (used by the halt condition F1 = 1).
  const BitVector& goal() const { return goal_; }

 private:
  BitVector goal_;
};

}  // namespace rpqlearn

#endif  // RPQLEARN_INTERACT_ORACLE_H_
