#include "interact/strategy.h"

#include <vector>

#include "util/logging.h"

namespace rpqlearn {

std::optional<NodeId> PickNextNode(const Graph& graph, const Sample& sample,
                                   const SubsetCoverage& coverage,
                                   const BitVector& informative,
                                   StrategyKind kind, Rng* rng) {
  std::vector<NodeId> candidates;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    if (informative.Test(v) && !sample.IsLabeled(v)) candidates.push_back(v);
  }
  if (candidates.empty()) return std::nullopt;

  switch (kind) {
    case StrategyKind::kRandom:
      return candidates[rng->NextBelow(candidates.size())];
    case StrategyKind::kSmallestPaths: {
      UncoveredPathCounter counter(graph, coverage);
      NodeId best = candidates[0];
      uint64_t best_count = counter.Count(best);
      for (size_t i = 1; i < candidates.size(); ++i) {
        uint64_t count = counter.Count(candidates[i]);
        if (count < best_count) {
          best_count = count;
          best = candidates[i];
        }
      }
      return best;
    }
  }
  RPQ_CHECK(false) << "unknown strategy";
  __builtin_unreachable();
}

}  // namespace rpqlearn
