#include "interact/informative.h"

#include <vector>

#include "util/logging.h"

namespace rpqlearn {

BitVector ComputeKInformative(const Graph& graph,
                              const SubsetCoverage& coverage) {
  const uint32_t nv = graph.num_nodes();
  const uint32_t nc = coverage.num_states();
  const uint32_t k = coverage.k();

  // reached[(v, s)] = from product state (v, s) some (·, ∅) is reachable
  // within the remaining budget. Layered backward BFS: layer 0 = all pairs
  // with the empty coverage subset.
  BitVector reached(static_cast<size_t>(nv) * nc);
  std::vector<std::pair<NodeId, StateId>> frontier;
  {
    StateId empty = coverage.empty_state();
    for (NodeId v = 0; v < nv; ++v) {
      reached.Set(static_cast<size_t>(v) * nc + empty);
      frontier.emplace_back(v, empty);
    }
  }

  // Reverse coverage transitions, restricted to states with materialized
  // rows (depth < k).
  std::vector<std::vector<std::vector<StateId>>> rev(
      graph.num_symbols(), std::vector<std::vector<StateId>>(nc));
  for (StateId s = 0; s < nc; ++s) {
    if (coverage.DepthOf(s) >= k && !coverage.IsEmptySubset(s)) continue;
    for (Symbol a = 0; a < coverage.num_symbols(); ++a) {
      rev[a][coverage.Next(s, a)].push_back(s);
    }
  }

  for (uint32_t step = 0; step < k && !frontier.empty(); ++step) {
    std::vector<std::pair<NodeId, StateId>> next;
    for (auto [v, s] : frontier) {
      for (const LabeledEdge& e : graph.InEdges(v)) {
        for (StateId p : rev[e.label][s]) {
          size_t idx = static_cast<size_t>(e.node) * nc + p;
          if (!reached.Test(idx)) {
            reached.Set(idx);
            next.emplace_back(e.node, p);
          }
        }
      }
    }
    frontier = std::move(next);
  }

  BitVector informative(nv);
  const StateId init = coverage.initial();
  for (NodeId v = 0; v < nv; ++v) {
    if (reached.Test(static_cast<size_t>(v) * nc + init)) informative.Set(v);
  }
  return informative;
}

uint64_t UncoveredPathCounter::Count(NodeId v) {
  return CountFrom(v, coverage_.initial(), coverage_.k());
}

uint64_t UncoveredPathCounter::CountFrom(NodeId v, StateId cov,
                                         uint32_t remaining) {
  uint64_t base = coverage_.IsEmptySubset(cov) ? 1 : 0;  // the path so far
  if (remaining == 0) return base;
  uint64_t key = (static_cast<uint64_t>(v) << 32) |
                 (static_cast<uint64_t>(cov) << 8) | remaining;
  auto it = memo_.find(key);
  if (it != memo_.end()) return it->second;
  uint64_t total = base;
  for (const LabeledEdge& e : graph_.OutEdges(v)) {
    StateId next_cov = coverage_.Next(cov, e.label);
    uint64_t sub = CountFrom(e.node, next_cov, remaining - 1);
    total = (total + sub < total) ? UINT64_MAX : total + sub;
  }
  memo_.emplace(key, total);
  return total;
}

}  // namespace rpqlearn
