#ifndef RPQLEARN_INTERACT_INFORMATIVE_H_
#define RPQLEARN_INTERACT_INFORMATIVE_H_

#include <cstdint>
#include <unordered_map>

#include "graph/graph.h"
#include "learn/coverage.h"
#include "util/bit_vector.h"

namespace rpqlearn {

/// Computes the k-informative nodes (Sec. 4.2): a node is k-informative iff
/// it has at least one path of length ≤ k not covered by a negative example.
/// (k-informative ⇒ informative; deciding full informativeness is
/// PSPACE-complete, Lemma 4.2.)
///
/// Implemented as a backward layered BFS over the product of the graph with
/// the negative-coverage subset automaton, from all pairs whose coverage
/// subset is empty. `coverage` must be built from the graph NFA with initial
/// set S− (all states accepting) at the same k.
BitVector ComputeKInformative(const Graph& graph,
                              const SubsetCoverage& coverage);

/// Counts, per node, the non-covered k-paths — the quantity minimized by
/// strategy kS: the number of paths p from ν with |p| ≤ k whose word is not
/// in paths_G(S−). Lazy memoized DP over (node, coverage state, remaining
/// depth), shared across queries; rebuild after the sample changes.
class UncoveredPathCounter {
 public:
  UncoveredPathCounter(const Graph& graph, const SubsetCoverage& coverage)
      : graph_(graph), coverage_(coverage) {}

  /// Number of non-covered paths of length ≤ k from `v` (saturating at
  /// uint64 max; exact for any realistic graph).
  uint64_t Count(NodeId v);

 private:
  uint64_t CountFrom(NodeId v, StateId cov, uint32_t remaining);

  const Graph& graph_;
  const SubsetCoverage& coverage_;
  std::unordered_map<uint64_t, uint64_t> memo_;
};

}  // namespace rpqlearn

#endif  // RPQLEARN_INTERACT_INFORMATIVE_H_
