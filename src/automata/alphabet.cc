#include "automata/alphabet.h"

#include "util/logging.h"

namespace rpqlearn {

Symbol Alphabet::Intern(std::string_view name) {
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  Symbol id = static_cast<Symbol>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

StatusOr<Symbol> Alphabet::Find(std::string_view name) const {
  auto it = ids_.find(std::string(name));
  if (it == ids_.end()) {
    return Status::NotFound("unknown symbol: " + std::string(name));
  }
  return it->second;
}

bool Alphabet::Contains(std::string_view name) const {
  return ids_.count(std::string(name)) > 0;
}

const std::string& Alphabet::Name(Symbol s) const {
  RPQ_CHECK_LT(s, names_.size());
  return names_[s];
}

std::vector<Symbol> Alphabet::InternGenerated(std::string_view prefix,
                                              uint32_t count) {
  std::vector<Symbol> out;
  out.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    out.push_back(Intern(std::string(prefix) + std::to_string(i)));
  }
  return out;
}

}  // namespace rpqlearn
