#ifndef RPQLEARN_AUTOMATA_INCLUSION_H_
#define RPQLEARN_AUTOMATA_INCLUSION_H_

#include <cstddef>
#include <optional>

#include "automata/nfa.h"
#include "util/status.h"

namespace rpqlearn {

/// Outcome of a language-inclusion check L(a) ⊆ L(b).
struct InclusionResult {
  bool included = false;
  /// A shortest word in L(a) \ L(b) when not included.
  std::optional<Word> counterexample;
};

/// Decides L(a) ⊆ L(b) with the forward antichain algorithm (De Wulf et al.):
/// explore pairs (state of a, subset of b), pruning pairs dominated by an
/// already-seen pair with a smaller subset. This problem is PSPACE-complete
/// in general (the paper's Lemma 3.2 reduces to it), so the search is capped:
/// exceeding `max_explored` pairs yields ResourceExhausted.
StatusOr<InclusionResult> CheckLanguageInclusion(const Nfa& a, const Nfa& b,
                                                 size_t max_explored = 500000);

}  // namespace rpqlearn

#endif  // RPQLEARN_AUTOMATA_INCLUSION_H_
