#include "automata/dfa_csr.h"

namespace rpqlearn {

FrozenDfa::FrozenDfa(const Dfa& dfa)
    : num_states_(dfa.num_states()),
      num_symbols_(dfa.num_symbols()),
      initial_(dfa.initial_state()) {
  const size_t cells = static_cast<size_t>(num_states_) * num_symbols_;
  next_.resize(cells);
  accepting_.resize(num_states_);
  for (StateId s = 0; s < num_states_; ++s) {
    accepting_[s] = dfa.IsAccepting(s) ? 1 : 0;
    for (Symbol a = 0; a < num_symbols_; ++a) {
      next_[static_cast<size_t>(s) * num_symbols_ + a] = dfa.Next(s, a);
    }
  }

  // Reverse index: counting sort of defined transitions by (symbol, target).
  rev_offsets_.assign(cells + 1, 0);
  for (StateId s = 0; s < num_states_; ++s) {
    for (Symbol a = 0; a < num_symbols_; ++a) {
      StateId t = next_[static_cast<size_t>(s) * num_symbols_ + a];
      if (t != kNoState) {
        ++rev_offsets_[static_cast<size_t>(a) * num_states_ + t + 1];
      }
    }
  }
  for (size_t i = 0; i < cells; ++i) rev_offsets_[i + 1] += rev_offsets_[i];
  rev_sources_.resize(rev_offsets_[cells]);
  std::vector<uint32_t> cursor(rev_offsets_.begin(), rev_offsets_.end() - 1);
  for (StateId s = 0; s < num_states_; ++s) {
    for (Symbol a = 0; a < num_symbols_; ++a) {
      StateId t = next_[static_cast<size_t>(s) * num_symbols_ + a];
      if (t != kNoState) {
        rev_sources_[cursor[static_cast<size_t>(a) * num_states_ + t]++] = s;
      }
    }
  }

  // Per-target list of non-empty reverse cells, symbol-ascending — the
  // iteration order of the backward monadic sweep and the bottom-up dense
  // rounds (ReverseInto).
  rev_entry_offsets_.assign(num_states_ + 1, 0);
  for (StateId t = 0; t < num_states_; ++t) {
    rev_entry_offsets_[t + 1] = rev_entry_offsets_[t];
    for (Symbol a = 0; a < num_symbols_; ++a) {
      const size_t cell = static_cast<size_t>(a) * num_states_ + t;
      if (rev_offsets_[cell + 1] > rev_offsets_[cell]) {
        rev_entries_.push_back({a, rev_offsets_[cell], rev_offsets_[cell + 1]});
        ++rev_entry_offsets_[t + 1];
      }
    }
  }
}

}  // namespace rpqlearn
