#include "automata/prefix_free.h"

#include "automata/minimize.h"

namespace rpqlearn {

bool IsPrefixFree(const Dfa& input) {
  Dfa dfa = input.Trimmed();
  for (StateId s = 0; s < dfa.num_states(); ++s) {
    if (!dfa.IsAccepting(s)) continue;
    for (Symbol a = 0; a < dfa.num_symbols(); ++a) {
      if (dfa.Next(s, a) != kNoState) return false;
    }
  }
  return true;
}

Dfa MakePrefixFree(const Dfa& input) {
  Dfa dfa = Canonicalize(input);
  for (StateId s = 0; s < dfa.num_states(); ++s) {
    if (!dfa.IsAccepting(s)) continue;
    for (Symbol a = 0; a < dfa.num_symbols(); ++a) {
      dfa.ClearTransition(s, a);
    }
  }
  return Canonicalize(dfa);
}

}  // namespace rpqlearn
