#ifndef RPQLEARN_AUTOMATA_WORD_H_
#define RPQLEARN_AUTOMATA_WORD_H_

#include <string>
#include <vector>

#include "automata/alphabet.h"

namespace rpqlearn {

/// A word over Σ; the empty vector is the empty word ε.
using Word = std::vector<Symbol>;

/// The well-founded canonical order ≤ on words from Sec. 2 of the paper:
/// `w ≤ u` iff `|w| < |u|`, or `|w| == |u|` and `w ≤lex u`.
/// Returns true iff `a` is strictly before `b`.
bool CanonicalLess(const Word& a, const Word& b);

/// Comparator object for use with ordered containers and std::sort.
struct CanonicalWordLess {
  bool operator()(const Word& a, const Word& b) const {
    return CanonicalLess(a, b);
  }
};

/// Renders a word as "a.b.c" using the alphabet's labels ("eps" for ε),
/// matching the paper's concatenation notation.
std::string WordToString(const Word& word, const Alphabet& alphabet);

/// All words of length at most `max_length` over `num_symbols` symbols, in
/// canonical order. Intended for exhaustive cross-checks in tests; the caller
/// is responsible for keeping `num_symbols^max_length` small.
std::vector<Word> AllWordsUpTo(uint32_t num_symbols, uint32_t max_length);

/// True iff `prefix` is a (not necessarily proper) prefix of `word`.
bool IsPrefixOf(const Word& prefix, const Word& word);

}  // namespace rpqlearn

#endif  // RPQLEARN_AUTOMATA_WORD_H_
