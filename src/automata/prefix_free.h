#ifndef RPQLEARN_AUTOMATA_PREFIX_FREE_H_
#define RPQLEARN_AUTOMATA_PREFIX_FREE_H_

#include "automata/dfa.h"

namespace rpqlearn {

/// True iff no word of the language is a proper prefix of another word of
/// the language. Decided on the trimmed DFA: prefix-free iff no accepting
/// state has an outgoing transition.
bool IsPrefixFree(const Dfa& dfa);

/// The unique prefix-free query equivalent to `dfa` under the paper's
/// monadic path-query semantics (Sec. 2): obtained by removing all outgoing
/// transitions of every accepting state of the canonical DFA, then
/// re-canonicalizing. Two queries select the same nodes on every graph iff
/// their prefix-free forms are language-equal.
Dfa MakePrefixFree(const Dfa& dfa);

}  // namespace rpqlearn

#endif  // RPQLEARN_AUTOMATA_PREFIX_FREE_H_
