#ifndef RPQLEARN_AUTOMATA_NFA_H_
#define RPQLEARN_AUTOMATA_NFA_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "automata/word.h"

namespace rpqlearn {

/// Dense automaton state id.
using StateId = uint32_t;

/// Sentinel for "no state" (undefined transition).
inline constexpr StateId kNoState = static_cast<StateId>(-1);

/// Nondeterministic finite automaton with optional ε-transitions
/// (Appendix A of the paper). Also the working representation for
/// "graph as automaton": `paths_G(X)` is the language of the graph's NFA with
/// initial set `X` and every state accepting.
class Nfa {
 public:
  /// An automaton over symbols `{0, ..., num_symbols-1}`.
  explicit Nfa(uint32_t num_symbols) : num_symbols_(num_symbols) {}

  /// Adds a fresh state and returns its id.
  StateId AddState(bool accepting = false);

  /// Reserves capacity for `num_states` total states (bulk construction).
  void ReserveStates(uint32_t num_states);

  /// Reserves capacity for `count` labeled transitions out of `s`.
  void ReserveTransitions(StateId s, size_t count);

  /// Adds the transition `from --symbol--> to`.
  void AddTransition(StateId from, Symbol symbol, StateId to);

  /// Adds the ε-transition `from --ε--> to`.
  void AddEpsilonTransition(StateId from, StateId to);

  void AddInitial(StateId s);
  void SetAccepting(StateId s, bool accepting);

  uint32_t num_states() const {
    return static_cast<uint32_t>(transitions_.size());
  }
  uint32_t num_symbols() const { return num_symbols_; }
  bool has_epsilon_transitions() const { return has_epsilon_; }

  const std::vector<StateId>& initial_states() const { return initial_; }
  bool IsAccepting(StateId s) const { return accepting_[s]; }

  /// Outgoing labeled transitions of `s` as (symbol, target) pairs, sorted by
  /// (symbol, target) once Finalize() has been called.
  const std::vector<std::pair<Symbol, StateId>>& TransitionsFrom(
      StateId s) const {
    return transitions_[s];
  }
  const std::vector<StateId>& EpsilonTransitionsFrom(StateId s) const {
    return epsilon_[s];
  }

  /// Sorts transition lists; call after construction for deterministic
  /// iteration order. Idempotent.
  void Finalize();

  /// ε-closure of `states`; the result is sorted and duplicate-free.
  /// `states` must be sorted.
  std::vector<StateId> EpsilonClosure(std::vector<StateId> states) const;

  /// One subset-construction step: ε-closure of all `symbol`-successors of
  /// `states`. `states` must be sorted; the result is sorted.
  std::vector<StateId> Step(const std::vector<StateId>& states,
                            Symbol symbol) const;

  /// True iff `states` (sorted) contains an accepting state.
  bool ContainsAccepting(const std::vector<StateId>& states) const;

  /// Membership test by subset simulation; O(|word| * |states| * degree).
  bool Accepts(const Word& word) const;

  /// Number of labeled transitions (excluding ε).
  size_t NumTransitions() const;

 private:
  uint32_t num_symbols_;
  bool has_epsilon_ = false;
  std::vector<std::vector<std::pair<Symbol, StateId>>> transitions_;
  std::vector<std::vector<StateId>> epsilon_;
  std::vector<bool> accepting_;
  std::vector<StateId> initial_;
};

}  // namespace rpqlearn

#endif  // RPQLEARN_AUTOMATA_NFA_H_
