#ifndef RPQLEARN_AUTOMATA_PTA_H_
#define RPQLEARN_AUTOMATA_PTA_H_

#include <vector>

#include "automata/dfa.h"
#include "automata/word.h"

namespace rpqlearn {

/// Builds the prefix tree acceptor (PTA) of `words`: the tree-shaped DFA
/// whose states are the prefixes of the words and whose accepting states are
/// exactly the words themselves (de la Higuera, and line 3 of the paper's
/// Algorithm 1). States are numbered in canonical (length-lex) order of
/// their access words, which is the merge order RPNI relies on.
/// The PTA of the empty set is a single rejecting root.
Dfa BuildPta(const std::vector<Word>& words, uint32_t num_symbols);

}  // namespace rpqlearn

#endif  // RPQLEARN_AUTOMATA_PTA_H_
