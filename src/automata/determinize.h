#ifndef RPQLEARN_AUTOMATA_DETERMINIZE_H_
#define RPQLEARN_AUTOMATA_DETERMINIZE_H_

#include "automata/dfa.h"
#include "automata/nfa.h"

namespace rpqlearn {

/// Subset construction. The result is a partial DFA over the same alphabet:
/// the empty subset is never materialized (missing transitions reject).
/// States are created in BFS order with symbol-ascending tie-breaks, so the
/// numbering is deterministic.
Dfa Determinize(const Nfa& nfa);

}  // namespace rpqlearn

#endif  // RPQLEARN_AUTOMATA_DETERMINIZE_H_
