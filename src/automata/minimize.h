#ifndef RPQLEARN_AUTOMATA_MINIMIZE_H_
#define RPQLEARN_AUTOMATA_MINIMIZE_H_

#include "automata/dfa.h"
#include "automata/nfa.h"

namespace rpqlearn {

/// Minimizes `dfa` with Hopcroft's partition-refinement algorithm
/// (O(n·|Σ|·log n)). The result is trimmed (reachable, co-reachable) and
/// numbered canonically, so equivalent inputs yield structurally equal
/// outputs (operator== on Dfa).
Dfa Minimize(const Dfa& dfa);

/// Reference implementation: Moore's iterative refinement (O(n²·|Σ|)).
/// Exists to cross-check Hopcroft in property tests.
Dfa MinimizeMoore(const Dfa& dfa);

/// Canonical DFA of an arbitrary DFA: trim + minimize + canonical numbering.
/// The paper represents every query by this form; query size = num_states().
Dfa Canonicalize(const Dfa& dfa);

/// Canonical DFA of an NFA's language: determinize, then Canonicalize.
Dfa CanonicalDfaOf(const Nfa& nfa);

}  // namespace rpqlearn

#endif  // RPQLEARN_AUTOMATA_MINIMIZE_H_
