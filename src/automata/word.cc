#include "automata/word.h"

#include <algorithm>

namespace rpqlearn {

bool CanonicalLess(const Word& a, const Word& b) {
  if (a.size() != b.size()) return a.size() < b.size();
  return std::lexicographical_compare(a.begin(), a.end(), b.begin(), b.end());
}

std::string WordToString(const Word& word, const Alphabet& alphabet) {
  if (word.empty()) return "eps";
  std::string out;
  for (size_t i = 0; i < word.size(); ++i) {
    if (i > 0) out += ".";
    out += alphabet.Name(word[i]);
  }
  return out;
}

std::vector<Word> AllWordsUpTo(uint32_t num_symbols, uint32_t max_length) {
  std::vector<Word> result;
  result.push_back(Word{});
  size_t level_begin = 0;
  for (uint32_t len = 1; len <= max_length; ++len) {
    size_t level_end = result.size();
    for (size_t i = level_begin; i < level_end; ++i) {
      for (Symbol a = 0; a < num_symbols; ++a) {
        Word extended = result[i];
        extended.push_back(a);
        result.push_back(std::move(extended));
      }
    }
    level_begin = level_end;
  }
  return result;
}

bool IsPrefixOf(const Word& prefix, const Word& word) {
  if (prefix.size() > word.size()) return false;
  return std::equal(prefix.begin(), prefix.end(), word.begin());
}

}  // namespace rpqlearn
