#ifndef RPQLEARN_AUTOMATA_OPS_H_
#define RPQLEARN_AUTOMATA_OPS_H_

#include <optional>

#include "automata/dfa.h"
#include "automata/nfa.h"

namespace rpqlearn {

/// Returns an equivalent NFA without ε-transitions.
Nfa RemoveEpsilons(const Nfa& nfa);

/// Disjoint union of two NFAs over the same alphabet; accepts L(a) ∪ L(b).
Nfa UnionNfa(const Nfa& a, const Nfa& b);

/// Materialized product automaton accepting L(a) ∩ L(b).
Nfa IntersectionNfa(const Nfa& a, const Nfa& b);

/// Complement: completes the DFA and flips accepting flags.
Dfa ComplementDfa(const Dfa& dfa);

/// Shortest accepted word of `nfa`, or nullopt if L(nfa) = ∅.
std::optional<Word> FindShortestAcceptedWord(const Nfa& nfa);

/// Shortest word of L(a) ∩ L(b), or nullopt if the intersection is empty.
/// This is the PTIME emptiness-of-intersection test the paper's learner uses
/// for consistency checks (proof of Thm. 3.5).
std::optional<Word> FindShortestWordInIntersection(const Nfa& a, const Nfa& b);

/// Emptiness of L(a) ∩ L(b); equivalent to !FindShortestWordInIntersection
/// but avoids building the witness.
bool IntersectionIsEmpty(const Nfa& a, const Nfa& b);

}  // namespace rpqlearn

#endif  // RPQLEARN_AUTOMATA_OPS_H_
