#include "automata/determinize.h"

#include <algorithm>
#include <deque>
#include <map>
#include <utility>
#include <vector>

namespace rpqlearn {

Dfa Determinize(const Nfa& nfa) {
  Dfa out(nfa.num_symbols());

  std::vector<StateId> start = nfa.initial_states();
  std::sort(start.begin(), start.end());
  start = nfa.EpsilonClosure(std::move(start));

  if (start.empty()) {
    // No initial states: the language is empty; represent it with a single
    // rejecting state so the DFA still has an initial state.
    out.AddState(false);
    return out;
  }

  std::map<std::vector<StateId>, StateId> ids;
  std::deque<std::vector<StateId>> queue;

  StateId s0 = out.AddState(nfa.ContainsAccepting(start));
  ids.emplace(start, s0);
  queue.push_back(std::move(start));

  while (!queue.empty()) {
    std::vector<StateId> subset = std::move(queue.front());
    queue.pop_front();
    StateId from = ids.at(subset);
    for (Symbol a = 0; a < nfa.num_symbols(); ++a) {
      std::vector<StateId> next = nfa.Step(subset, a);
      if (next.empty()) continue;
      auto [it, inserted] = ids.emplace(next, out.num_states());
      if (inserted) {
        StateId created = out.AddState(nfa.ContainsAccepting(next));
        (void)created;
        queue.push_back(std::move(next));
      }
      out.SetTransition(from, a, it->second);
    }
  }
  return out;
}

}  // namespace rpqlearn
