#include "automata/equivalence.h"

#include <deque>
#include <numeric>
#include <utility>
#include <vector>

#include "automata/determinize.h"
#include "automata/minimize.h"
#include "util/logging.h"

namespace rpqlearn {
namespace {

/// Plain union-find over dense ids.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  /// Returns false if already united.
  bool Union(size_t x, size_t y) {
    x = Find(x);
    y = Find(y);
    if (x == y) return false;
    parent_[y] = x;
    return true;
  }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

bool AreEquivalent(const Dfa& a_in, const Dfa& b_in) {
  RPQ_CHECK_EQ(a_in.num_symbols(), b_in.num_symbols());
  const Dfa a = a_in.Completed();
  const Dfa b = b_in.Completed();
  const size_t offset = a.num_states();

  auto accepting = [&](size_t s) {
    return s < offset ? a.IsAccepting(static_cast<StateId>(s))
                      : b.IsAccepting(static_cast<StateId>(s - offset));
  };
  auto next = [&](size_t s, Symbol sym) -> size_t {
    return s < offset
               ? a.Next(static_cast<StateId>(s), sym)
               : b.Next(static_cast<StateId>(s - offset), sym) + offset;
  };

  UnionFind uf(a.num_states() + b.num_states());
  std::deque<std::pair<size_t, size_t>> queue;
  queue.emplace_back(a.initial_state(),
                     static_cast<size_t>(b.initial_state()) + offset);
  uf.Union(queue.front().first, queue.front().second);
  if (accepting(queue.front().first) != accepting(queue.front().second)) {
    return false;
  }

  while (!queue.empty()) {
    auto [x, y] = queue.front();
    queue.pop_front();
    for (Symbol sym = 0; sym < a.num_symbols(); ++sym) {
      size_t tx = next(x, sym);
      size_t ty = next(y, sym);
      if (uf.Find(tx) == uf.Find(ty)) continue;
      if (accepting(tx) != accepting(ty)) return false;
      uf.Union(tx, ty);
      queue.emplace_back(tx, ty);
    }
  }
  return true;
}

bool AreIsomorphic(const Dfa& a, const Dfa& b) {
  if (a.num_symbols() != b.num_symbols()) return false;
  if (a.num_states() != b.num_states()) return false;
  const StateId n = a.num_states();
  std::vector<StateId> map_ab(n, kNoState);
  std::deque<StateId> queue;
  map_ab[a.initial_state()] = b.initial_state();
  queue.push_back(a.initial_state());
  std::vector<bool> visited(n, false);
  visited[a.initial_state()] = true;
  while (!queue.empty()) {
    StateId s = queue.front();
    queue.pop_front();
    StateId bs = map_ab[s];
    if (a.IsAccepting(s) != b.IsAccepting(bs)) return false;
    for (Symbol sym = 0; sym < a.num_symbols(); ++sym) {
      StateId ta = a.Next(s, sym);
      StateId tb = b.Next(bs, sym);
      if ((ta == kNoState) != (tb == kNoState)) return false;
      if (ta == kNoState) continue;
      if (map_ab[ta] == kNoState) {
        map_ab[ta] = tb;
        if (!visited[ta]) {
          visited[ta] = true;
          queue.push_back(ta);
        }
      } else if (map_ab[ta] != tb) {
        return false;
      }
    }
  }
  return true;
}

bool AreEquivalentNfa(const Nfa& a, const Nfa& b) {
  return AreEquivalent(Determinize(a), Determinize(b));
}

}  // namespace rpqlearn
