#include "automata/dfa.h"

#include <algorithm>
#include <deque>

#include "util/logging.h"

namespace rpqlearn {

StateId Dfa::AddState(bool accepting) {
  StateId id = static_cast<StateId>(accepting_.size());
  accepting_.push_back(accepting);
  table_.insert(table_.end(), num_symbols_, kNoState);
  if (initial_ == kNoState) initial_ = id;
  return id;
}

void Dfa::SetTransition(StateId from, Symbol symbol, StateId to) {
  RPQ_DCHECK(from < num_states());
  RPQ_DCHECK(to < num_states());
  RPQ_DCHECK(symbol < num_symbols_);
  table_[static_cast<size_t>(from) * num_symbols_ + symbol] = to;
}

void Dfa::ClearTransition(StateId from, Symbol symbol) {
  RPQ_DCHECK(from < num_states());
  table_[static_cast<size_t>(from) * num_symbols_ + symbol] = kNoState;
}

void Dfa::SetInitial(StateId s) {
  RPQ_DCHECK(s < num_states());
  initial_ = s;
}

void Dfa::SetAccepting(StateId s, bool accepting) {
  RPQ_DCHECK(s < num_states());
  accepting_[s] = accepting;
}

StateId Dfa::Run(StateId from, const Word& word) const {
  StateId s = from;
  for (Symbol a : word) {
    if (s == kNoState) return kNoState;
    s = Next(s, a);
  }
  return s;
}

bool Dfa::Accepts(const Word& word) const {
  if (initial_ == kNoState) return false;
  StateId s = Run(initial_, word);
  return s != kNoState && accepting_[s];
}

bool Dfa::IsComplete() const {
  for (StateId t : table_) {
    if (t == kNoState) return false;
  }
  return num_states() > 0;
}

Dfa Dfa::Completed() const {
  if (IsComplete()) return *this;
  Dfa out = *this;
  StateId sink = out.AddState(false);
  for (StateId s = 0; s < out.num_states(); ++s) {
    for (Symbol a = 0; a < num_symbols_; ++a) {
      if (out.Next(s, a) == kNoState) out.SetTransition(s, a, sink);
    }
  }
  return out;
}

Dfa Dfa::Trimmed(std::vector<StateId>* old_to_new) const {
  RPQ_CHECK(initial_ != kNoState) << "Trimmed() requires an initial state";
  const uint32_t n = num_states();

  // Forward reachability from the initial state.
  std::vector<bool> reachable(n, false);
  {
    std::deque<StateId> queue{initial_};
    reachable[initial_] = true;
    while (!queue.empty()) {
      StateId s = queue.front();
      queue.pop_front();
      for (Symbol a = 0; a < num_symbols_; ++a) {
        StateId t = Next(s, a);
        if (t != kNoState && !reachable[t]) {
          reachable[t] = true;
          queue.push_back(t);
        }
      }
    }
  }

  // Backward reachability from accepting states (co-reachability).
  std::vector<bool> live(n, false);
  {
    std::vector<std::vector<StateId>> preds(n);
    for (StateId s = 0; s < n; ++s) {
      for (Symbol a = 0; a < num_symbols_; ++a) {
        StateId t = Next(s, a);
        if (t != kNoState) preds[t].push_back(s);
      }
    }
    std::deque<StateId> queue;
    for (StateId s = 0; s < n; ++s) {
      if (accepting_[s]) {
        live[s] = true;
        queue.push_back(s);
      }
    }
    while (!queue.empty()) {
      StateId s = queue.front();
      queue.pop_front();
      for (StateId p : preds[s]) {
        if (!live[p]) {
          live[p] = true;
          queue.push_back(p);
        }
      }
    }
  }

  std::vector<bool> keep(n, false);
  for (StateId s = 0; s < n; ++s) keep[s] = reachable[s] && live[s];
  keep[initial_] = true;  // the initial state is always kept

  // BFS renumbering over kept states, exploring symbols in ascending order,
  // which yields the canonical numbering by least access word.
  std::vector<StateId> mapping(n, kNoState);
  Dfa out(num_symbols_);
  std::deque<StateId> queue{initial_};
  mapping[initial_] = out.AddState(accepting_[initial_]);
  while (!queue.empty()) {
    StateId s = queue.front();
    queue.pop_front();
    for (Symbol a = 0; a < num_symbols_; ++a) {
      StateId t = Next(s, a);
      if (t == kNoState || !keep[t]) continue;
      if (mapping[t] == kNoState) {
        mapping[t] = out.AddState(accepting_[t]);
        queue.push_back(t);
      }
      out.SetTransition(mapping[s], a, mapping[t]);
    }
  }
  out.SetInitial(mapping[initial_]);
  if (old_to_new != nullptr) *old_to_new = std::move(mapping);
  return out;
}

Nfa Dfa::ToNfa() const {
  Nfa out(num_symbols_);
  for (StateId s = 0; s < num_states(); ++s) out.AddState(accepting_[s]);
  for (StateId s = 0; s < num_states(); ++s) {
    for (Symbol a = 0; a < num_symbols_; ++a) {
      StateId t = Next(s, a);
      if (t != kNoState) out.AddTransition(s, a, t);
    }
  }
  if (initial_ != kNoState) out.AddInitial(initial_);
  out.Finalize();
  return out;
}

std::vector<StateId> Dfa::AcceptingStates() const {
  std::vector<StateId> out;
  for (StateId s = 0; s < num_states(); ++s) {
    if (accepting_[s]) out.push_back(s);
  }
  return out;
}

size_t Dfa::NumTransitions() const {
  size_t total = 0;
  for (StateId t : table_) {
    if (t != kNoState) ++total;
  }
  return total;
}

bool Dfa::IsEmptyLanguage() const {
  if (initial_ == kNoState) return true;
  std::vector<bool> seen(num_states(), false);
  std::deque<StateId> queue{initial_};
  seen[initial_] = true;
  while (!queue.empty()) {
    StateId s = queue.front();
    queue.pop_front();
    if (accepting_[s]) return false;
    for (Symbol a = 0; a < num_symbols_; ++a) {
      StateId t = Next(s, a);
      if (t != kNoState && !seen[t]) {
        seen[t] = true;
        queue.push_back(t);
      }
    }
  }
  return true;
}

}  // namespace rpqlearn
