#include "automata/minimize.h"

#include <algorithm>
#include <deque>
#include <map>
#include <numeric>
#include <vector>

#include "automata/determinize.h"
#include "util/logging.h"

namespace rpqlearn {
namespace {

/// Builds the quotient DFA of `dfa` under the state partition `block_of`
/// (states with equal block ids are merged), then trims it. `dfa` must be
/// complete and the partition must respect accepting flags and transitions.
Dfa BuildQuotient(const Dfa& dfa, const std::vector<int>& block_of,
                  int num_blocks) {
  Dfa quotient(dfa.num_symbols());
  for (int b = 0; b < num_blocks; ++b) quotient.AddState(false);
  std::vector<bool> seen(num_blocks, false);
  for (StateId s = 0; s < dfa.num_states(); ++s) {
    int b = block_of[s];
    if (dfa.IsAccepting(s)) quotient.SetAccepting(b, true);
    if (seen[b]) continue;
    seen[b] = true;
    for (Symbol a = 0; a < dfa.num_symbols(); ++a) {
      StateId t = dfa.Next(s, a);
      RPQ_DCHECK(t != kNoState);
      quotient.SetTransition(b, a, block_of[t]);
    }
  }
  quotient.SetInitial(block_of[dfa.initial_state()]);
  return quotient.Trimmed();
}

}  // namespace

Dfa Minimize(const Dfa& input) {
  Dfa trimmed = input.Trimmed();
  Dfa dfa = trimmed.Completed();
  const uint32_t n = dfa.num_states();
  const uint32_t sigma = dfa.num_symbols();

  // Inverse transition lists: inverse[a][t] = predecessors of t on a.
  std::vector<std::vector<std::vector<StateId>>> inverse(
      sigma, std::vector<std::vector<StateId>>(n));
  for (StateId s = 0; s < n; ++s) {
    for (Symbol a = 0; a < sigma; ++a) {
      inverse[a][dfa.Next(s, a)].push_back(s);
    }
  }

  // Partition data structures.
  std::vector<int> block_of(n);
  std::vector<std::vector<StateId>> blocks;
  {
    std::vector<StateId> acc;
    std::vector<StateId> rej;
    for (StateId s = 0; s < n; ++s) {
      (dfa.IsAccepting(s) ? acc : rej).push_back(s);
    }
    if (!acc.empty()) blocks.push_back(std::move(acc));
    if (!rej.empty()) blocks.push_back(std::move(rej));
    for (size_t b = 0; b < blocks.size(); ++b) {
      for (StateId s : blocks[b]) block_of[s] = static_cast<int>(b);
    }
  }

  std::deque<int> worklist;
  std::vector<bool> in_worklist(blocks.size(), false);
  for (size_t b = 0; b < blocks.size(); ++b) {
    worklist.push_back(static_cast<int>(b));
    in_worklist[b] = true;
  }

  std::vector<int> touched_count;  // per block: how many states hit by X
  std::vector<char> state_hit(n, 0);

  while (!worklist.empty()) {
    int splitter = worklist.front();
    worklist.pop_front();
    in_worklist[splitter] = false;
    // Copy: the splitter block may itself be split below.
    std::vector<StateId> splitter_states = blocks[splitter];

    for (Symbol a = 0; a < sigma; ++a) {
      // X = preimage of the splitter block under symbol a.
      std::vector<StateId> x;
      for (StateId t : splitter_states) {
        for (StateId p : inverse[a][t]) x.push_back(p);
      }
      if (x.empty()) continue;

      // Mark hit states and count per block.
      std::vector<int> affected_blocks;
      touched_count.assign(blocks.size(), 0);
      for (StateId s : x) {
        if (!state_hit[s]) {
          state_hit[s] = 1;
          int b = block_of[s];
          if (touched_count[b] == 0) affected_blocks.push_back(b);
          ++touched_count[b];
        }
      }

      for (int b : affected_blocks) {
        int hit = touched_count[b];
        int size = static_cast<int>(blocks[b].size());
        if (hit == size) continue;  // not split
        // Split block b into hit / not-hit parts.
        std::vector<StateId> hit_part;
        std::vector<StateId> rest;
        hit_part.reserve(hit);
        rest.reserve(size - hit);
        for (StateId s : blocks[b]) {
          (state_hit[s] ? hit_part : rest).push_back(s);
        }
        int new_block = static_cast<int>(blocks.size());
        // Keep the larger part in place; the new block gets the smaller.
        bool hit_is_smaller = hit_part.size() <= rest.size();
        std::vector<StateId>& small = hit_is_smaller ? hit_part : rest;
        std::vector<StateId>& large = hit_is_smaller ? rest : hit_part;
        for (StateId s : small) block_of[s] = new_block;
        blocks[b] = std::move(large);
        blocks.push_back(std::move(small));
        // The new block holds the smaller part. If the original block was
        // queued, both halves must be queued; otherwise queueing the smaller
        // half preserves Hopcroft's invariant either way.
        in_worklist.push_back(true);
        worklist.push_back(new_block);
      }

      for (StateId s : x) state_hit[s] = 0;
    }
  }

  return BuildQuotient(dfa, block_of, static_cast<int>(blocks.size()));
}

Dfa MinimizeMoore(const Dfa& input) {
  Dfa trimmed = input.Trimmed();
  Dfa dfa = trimmed.Completed();
  const uint32_t n = dfa.num_states();
  const uint32_t sigma = dfa.num_symbols();

  std::vector<int> cls(n);
  for (StateId s = 0; s < n; ++s) cls[s] = dfa.IsAccepting(s) ? 1 : 0;

  int num_classes = 2;
  while (true) {
    std::map<std::vector<int>, int> signature_ids;
    std::vector<int> next_cls(n);
    for (StateId s = 0; s < n; ++s) {
      std::vector<int> signature;
      signature.reserve(sigma + 1);
      signature.push_back(cls[s]);
      for (Symbol a = 0; a < sigma; ++a) {
        signature.push_back(cls[dfa.Next(s, a)]);
      }
      auto [it, inserted] =
          signature_ids.emplace(std::move(signature),
                                static_cast<int>(signature_ids.size()));
      next_cls[s] = it->second;
    }
    int new_count = static_cast<int>(signature_ids.size());
    cls = std::move(next_cls);
    if (new_count == num_classes) break;
    num_classes = new_count;
  }

  return BuildQuotient(dfa, cls, num_classes);
}

Dfa Canonicalize(const Dfa& dfa) { return Minimize(dfa); }

Dfa CanonicalDfaOf(const Nfa& nfa) { return Canonicalize(Determinize(nfa)); }

}  // namespace rpqlearn
