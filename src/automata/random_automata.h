#ifndef RPQLEARN_AUTOMATA_RANDOM_AUTOMATA_H_
#define RPQLEARN_AUTOMATA_RANDOM_AUTOMATA_H_

#include "automata/dfa.h"
#include "automata/nfa.h"
#include "util/random.h"

namespace rpqlearn {

/// Knobs for random automaton generation (property tests, fuzz sweeps).
struct RandomAutomatonOptions {
  uint32_t num_states = 5;
  uint32_t num_symbols = 2;
  /// Probability that a given (state, symbol) transition exists.
  double transition_density = 0.8;
  /// Probability that a state is accepting.
  double accepting_probability = 0.3;
};

/// A random partial DFA; not necessarily trimmed, may have empty language.
Dfa RandomDfa(Rng* rng, const RandomAutomatonOptions& options);

/// A random NFA; each (state, symbol) pair gets 0–2 targets.
Nfa RandomNfa(Rng* rng, const RandomAutomatonOptions& options);

/// A random canonical *prefix-free* query DFA with a non-empty language —
/// the representation the paper assumes for goal queries. Retries until the
/// prefix-free canonical form is non-empty.
Dfa RandomPrefixFreeQuery(Rng* rng, const RandomAutomatonOptions& options);

}  // namespace rpqlearn

#endif  // RPQLEARN_AUTOMATA_RANDOM_AUTOMATA_H_
