#include "automata/random_automata.h"

#include "automata/minimize.h"
#include "automata/prefix_free.h"
#include "util/logging.h"

namespace rpqlearn {

Dfa RandomDfa(Rng* rng, const RandomAutomatonOptions& options) {
  RPQ_CHECK_GT(options.num_states, 0u);
  Dfa dfa(options.num_symbols);
  for (uint32_t i = 0; i < options.num_states; ++i) {
    dfa.AddState(rng->NextBernoulli(options.accepting_probability));
  }
  for (StateId s = 0; s < options.num_states; ++s) {
    for (Symbol a = 0; a < options.num_symbols; ++a) {
      if (rng->NextBernoulli(options.transition_density)) {
        dfa.SetTransition(
            s, a, static_cast<StateId>(rng->NextBelow(options.num_states)));
      }
    }
  }
  return dfa;
}

Nfa RandomNfa(Rng* rng, const RandomAutomatonOptions& options) {
  RPQ_CHECK_GT(options.num_states, 0u);
  Nfa nfa(options.num_symbols);
  for (uint32_t i = 0; i < options.num_states; ++i) {
    nfa.AddState(rng->NextBernoulli(options.accepting_probability));
  }
  for (StateId s = 0; s < options.num_states; ++s) {
    for (Symbol a = 0; a < options.num_symbols; ++a) {
      int fanout = static_cast<int>(rng->NextBelow(3));
      for (int i = 0; i < fanout; ++i) {
        if (rng->NextBernoulli(options.transition_density)) {
          nfa.AddTransition(
              s, a, static_cast<StateId>(rng->NextBelow(options.num_states)));
        }
      }
    }
  }
  nfa.AddInitial(0);
  if (rng->NextBernoulli(0.3) && options.num_states > 1) {
    nfa.AddInitial(static_cast<StateId>(rng->NextBelow(options.num_states)));
  }
  nfa.Finalize();
  return nfa;
}

Dfa RandomPrefixFreeQuery(Rng* rng, const RandomAutomatonOptions& options) {
  for (int attempt = 0; attempt < 1000; ++attempt) {
    Dfa candidate = MakePrefixFree(Canonicalize(RandomDfa(rng, options)));
    if (!candidate.IsEmptyLanguage()) return candidate;
  }
  RPQ_CHECK(false) << "could not generate a non-empty prefix-free query";
  __builtin_unreachable();
}

}  // namespace rpqlearn
