#include "automata/nfa.h"

#include <algorithm>

#include "util/logging.h"

namespace rpqlearn {

StateId Nfa::AddState(bool accepting) {
  StateId id = static_cast<StateId>(transitions_.size());
  transitions_.emplace_back();
  epsilon_.emplace_back();
  accepting_.push_back(accepting);
  return id;
}

void Nfa::ReserveStates(uint32_t num_states) {
  transitions_.reserve(num_states);
  epsilon_.reserve(num_states);
  accepting_.reserve(num_states);
}

void Nfa::ReserveTransitions(StateId s, size_t count) {
  RPQ_DCHECK(s < num_states());
  transitions_[s].reserve(count);
}

void Nfa::AddTransition(StateId from, Symbol symbol, StateId to) {
  RPQ_DCHECK(from < num_states());
  RPQ_DCHECK(to < num_states());
  RPQ_DCHECK(symbol < num_symbols_);
  transitions_[from].emplace_back(symbol, to);
}

void Nfa::AddEpsilonTransition(StateId from, StateId to) {
  RPQ_DCHECK(from < num_states());
  RPQ_DCHECK(to < num_states());
  epsilon_[from].push_back(to);
  has_epsilon_ = true;
}

void Nfa::AddInitial(StateId s) {
  RPQ_DCHECK(s < num_states());
  initial_.push_back(s);
}

void Nfa::SetAccepting(StateId s, bool accepting) {
  RPQ_DCHECK(s < num_states());
  accepting_[s] = accepting;
}

void Nfa::Finalize() {
  for (auto& list : transitions_) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
  for (auto& list : epsilon_) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
  std::sort(initial_.begin(), initial_.end());
  initial_.erase(std::unique(initial_.begin(), initial_.end()),
                 initial_.end());
}

std::vector<StateId> Nfa::EpsilonClosure(std::vector<StateId> states) const {
  if (!has_epsilon_) return states;
  std::vector<StateId> stack = states;
  std::vector<bool> seen(num_states(), false);
  for (StateId s : states) seen[s] = true;
  while (!stack.empty()) {
    StateId s = stack.back();
    stack.pop_back();
    for (StateId t : epsilon_[s]) {
      if (!seen[t]) {
        seen[t] = true;
        states.push_back(t);
        stack.push_back(t);
      }
    }
  }
  std::sort(states.begin(), states.end());
  return states;
}

std::vector<StateId> Nfa::Step(const std::vector<StateId>& states,
                               Symbol symbol) const {
  std::vector<StateId> next;
  for (StateId s : states) {
    // Transition lists are sorted by symbol after Finalize(); a linear scan
    // is still fine (and correct) either way.
    for (const auto& [a, t] : transitions_[s]) {
      if (a == symbol) next.push_back(t);
    }
  }
  std::sort(next.begin(), next.end());
  next.erase(std::unique(next.begin(), next.end()), next.end());
  return EpsilonClosure(std::move(next));
}

bool Nfa::ContainsAccepting(const std::vector<StateId>& states) const {
  for (StateId s : states) {
    if (accepting_[s]) return true;
  }
  return false;
}

bool Nfa::Accepts(const Word& word) const {
  std::vector<StateId> current = initial_;
  std::sort(current.begin(), current.end());
  current = EpsilonClosure(std::move(current));
  for (Symbol a : word) {
    if (current.empty()) return false;
    current = Step(current, a);
  }
  return ContainsAccepting(current);
}

size_t Nfa::NumTransitions() const {
  size_t total = 0;
  for (const auto& list : transitions_) total += list.size();
  return total;
}

}  // namespace rpqlearn
