#ifndef RPQLEARN_AUTOMATA_ALPHABET_H_
#define RPQLEARN_AUTOMATA_ALPHABET_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace rpqlearn {

/// A symbol of the alphabet Σ, represented densely.
using Symbol = uint32_t;

/// A finite ordered set of edge-label symbols (Sec. 2 of the paper).
/// Symbols are interned strings; the dense ids define the order on Σ that the
/// canonical word order extends lexicographically.
class Alphabet {
 public:
  Alphabet() = default;

  /// Returns the id of `name`, interning it if new.
  Symbol Intern(std::string_view name);

  /// Returns the id of `name` or NotFound if it was never interned.
  StatusOr<Symbol> Find(std::string_view name) const;

  /// True iff `name` has been interned.
  bool Contains(std::string_view name) const;

  /// The label of symbol `s`; `s` must be a valid id.
  const std::string& Name(Symbol s) const;

  /// Number of interned symbols.
  uint32_t size() const { return static_cast<uint32_t>(names_.size()); }

  /// Convenience: interns `a0, a1, ..., a(n-1)` style generated labels with
  /// the given prefix and returns their ids.
  std::vector<Symbol> InternGenerated(std::string_view prefix, uint32_t count);

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, Symbol> ids_;
};

}  // namespace rpqlearn

#endif  // RPQLEARN_AUTOMATA_ALPHABET_H_
