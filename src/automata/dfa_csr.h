#ifndef RPQLEARN_AUTOMATA_DFA_CSR_H_
#define RPQLEARN_AUTOMATA_DFA_CSR_H_

#include <cstdint>
#include <span>
#include <vector>

#include "automata/dfa.h"

namespace rpqlearn {

/// Frozen, evaluation-oriented snapshot of a Dfa: the forward transition
/// function as one flat `states × symbols` array plus a CSR reverse-transition
/// index (`Sources(a, t)` = all s with δ(s, a) = t). Built once per evaluation
/// call; the product-BFS inner loops of eval.cc read it with no per-lookup
/// indirection or allocation.
class FrozenDfa {
 public:
  explicit FrozenDfa(const Dfa& dfa);

  uint32_t num_states() const { return num_states_; }
  uint32_t num_symbols() const { return num_symbols_; }
  StateId initial_state() const { return initial_; }

  StateId Next(StateId from, Symbol symbol) const {
    return next_[static_cast<size_t>(from) * num_symbols_ + symbol];
  }
  bool IsAccepting(StateId s) const { return accepting_[s] != 0; }

  /// All states s with `s --symbol--> target`, ascending.
  std::span<const StateId> Sources(Symbol symbol, StateId target) const {
    const size_t cell = static_cast<size_t>(symbol) * num_states_ + target;
    return {rev_sources_.data() + rev_offsets_[cell],
            rev_offsets_[cell + 1] - rev_offsets_[cell]};
  }

  /// One non-empty reverse cell of a target state: the symbol plus the
  /// [begin, end) range of `Sources(symbol, target)` inside the flat source
  /// array. Offsets instead of spans, because spans into this object's own
  /// rev_sources_ would dangle after a copy or move.
  struct ReverseEntry {
    Symbol symbol;
    uint32_t begin;
    uint32_t end;
  };

  /// The non-empty reverse cells of `target`, symbol-ascending: exactly the
  /// (symbol, sources) pairs that can advance a backward/bottom-up product
  /// step into `target`. Empty cells never appear, so traversal loops skip
  /// symbols that cannot fire without probing them.
  std::span<const ReverseEntry> ReverseInto(StateId target) const {
    return {rev_entries_.data() + rev_entry_offsets_[target],
            rev_entry_offsets_[target + 1] - rev_entry_offsets_[target]};
  }

  /// The source span of one ReverseEntry.
  std::span<const StateId> EntrySources(const ReverseEntry& entry) const {
    return {rev_sources_.data() + entry.begin,
            static_cast<size_t>(entry.end - entry.begin)};
  }

 private:
  uint32_t num_states_;
  uint32_t num_symbols_;
  StateId initial_;
  std::vector<StateId> next_;       // num_states × num_symbols
  std::vector<uint8_t> accepting_;  // flat bool, avoids vector<bool> bit ops
  std::vector<uint32_t> rev_offsets_;  // num_symbols × num_states + 1
  std::vector<StateId> rev_sources_;   // grouped by (symbol, target)
  std::vector<uint32_t> rev_entry_offsets_;  // num_states + 1
  std::vector<ReverseEntry> rev_entries_;    // non-empty cells per target
};

}  // namespace rpqlearn

#endif  // RPQLEARN_AUTOMATA_DFA_CSR_H_
