#ifndef RPQLEARN_AUTOMATA_DFA_CSR_H_
#define RPQLEARN_AUTOMATA_DFA_CSR_H_

#include <cstdint>
#include <span>
#include <vector>

#include "automata/dfa.h"

namespace rpqlearn {

/// Frozen, evaluation-oriented snapshot of a Dfa: the forward transition
/// function as one flat `states × symbols` array plus a CSR reverse-transition
/// index (`Sources(a, t)` = all s with δ(s, a) = t). Built once per evaluation
/// call; the product-BFS inner loops of eval.cc read it with no per-lookup
/// indirection or allocation.
class FrozenDfa {
 public:
  explicit FrozenDfa(const Dfa& dfa);

  uint32_t num_states() const { return num_states_; }
  uint32_t num_symbols() const { return num_symbols_; }
  StateId initial_state() const { return initial_; }

  StateId Next(StateId from, Symbol symbol) const {
    return next_[static_cast<size_t>(from) * num_symbols_ + symbol];
  }
  bool IsAccepting(StateId s) const { return accepting_[s] != 0; }

  /// All states s with `s --symbol--> target`, ascending.
  std::span<const StateId> Sources(Symbol symbol, StateId target) const {
    const size_t cell = static_cast<size_t>(symbol) * num_states_ + target;
    return {rev_sources_.data() + rev_offsets_[cell],
            rev_offsets_[cell + 1] - rev_offsets_[cell]};
  }

 private:
  uint32_t num_states_;
  uint32_t num_symbols_;
  StateId initial_;
  std::vector<StateId> next_;       // num_states × num_symbols
  std::vector<uint8_t> accepting_;  // flat bool, avoids vector<bool> bit ops
  std::vector<uint32_t> rev_offsets_;  // num_symbols × num_states + 1
  std::vector<StateId> rev_sources_;   // grouped by (symbol, target)
};

}  // namespace rpqlearn

#endif  // RPQLEARN_AUTOMATA_DFA_CSR_H_
