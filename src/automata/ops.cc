#include "automata/ops.h"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/logging.h"

namespace rpqlearn {
namespace {

/// Reconstructs the word leading to `state` by following BFS parents.
/// Root entries carry `root_marker` as parent and no edge symbol.
Word ReconstructWord(
    const std::unordered_map<uint64_t, std::pair<uint64_t, Symbol>>& parents,
    uint64_t state, uint64_t root_marker) {
  Word word;
  uint64_t current = state;
  while (true) {
    const auto& [prev, symbol] = parents.at(current);
    if (prev == root_marker) break;
    word.push_back(symbol);
    current = prev;
  }
  std::reverse(word.begin(), word.end());
  return word;
}

}  // namespace

Nfa RemoveEpsilons(const Nfa& nfa) {
  if (!nfa.has_epsilon_transitions()) return nfa;
  Nfa out(nfa.num_symbols());
  for (StateId s = 0; s < nfa.num_states(); ++s) out.AddState(false);
  for (StateId s = 0; s < nfa.num_states(); ++s) {
    std::vector<StateId> closure = nfa.EpsilonClosure({s});
    for (StateId u : closure) {
      if (nfa.IsAccepting(u)) out.SetAccepting(s, true);
      for (const auto& [a, t] : nfa.TransitionsFrom(u)) {
        out.AddTransition(s, a, t);
      }
    }
  }
  for (StateId s : nfa.initial_states()) out.AddInitial(s);
  out.Finalize();
  return out;
}

Nfa UnionNfa(const Nfa& a, const Nfa& b) {
  RPQ_CHECK_EQ(a.num_symbols(), b.num_symbols());
  Nfa out(a.num_symbols());
  for (StateId s = 0; s < a.num_states(); ++s) out.AddState(a.IsAccepting(s));
  const StateId offset = a.num_states();
  for (StateId s = 0; s < b.num_states(); ++s) out.AddState(b.IsAccepting(s));
  for (StateId s = 0; s < a.num_states(); ++s) {
    for (const auto& [sym, t] : a.TransitionsFrom(s)) {
      out.AddTransition(s, sym, t);
    }
    for (StateId t : a.EpsilonTransitionsFrom(s)) {
      out.AddEpsilonTransition(s, t);
    }
  }
  for (StateId s = 0; s < b.num_states(); ++s) {
    for (const auto& [sym, t] : b.TransitionsFrom(s)) {
      out.AddTransition(s + offset, sym, t + offset);
    }
    for (StateId t : b.EpsilonTransitionsFrom(s)) {
      out.AddEpsilonTransition(s + offset, t + offset);
    }
  }
  for (StateId s : a.initial_states()) out.AddInitial(s);
  for (StateId s : b.initial_states()) out.AddInitial(s + offset);
  out.Finalize();
  return out;
}

Nfa IntersectionNfa(const Nfa& a_in, const Nfa& b_in) {
  RPQ_CHECK_EQ(a_in.num_symbols(), b_in.num_symbols());
  const Nfa a = RemoveEpsilons(a_in);
  const Nfa b = RemoveEpsilons(b_in);

  Nfa out(a.num_symbols());
  std::unordered_map<uint64_t, StateId> ids;
  std::deque<std::pair<StateId, StateId>> queue;
  auto key = [](StateId x, StateId y) {
    return (static_cast<uint64_t>(x) << 32) | y;
  };
  auto get_id = [&](StateId x, StateId y) {
    auto [it, inserted] = ids.emplace(key(x, y), out.num_states());
    if (inserted) {
      out.AddState(a.IsAccepting(x) && b.IsAccepting(y));
      queue.emplace_back(x, y);
    }
    return it->second;
  };

  for (StateId x : a.initial_states()) {
    for (StateId y : b.initial_states()) {
      out.AddInitial(get_id(x, y));
    }
  }
  while (!queue.empty()) {
    auto [x, y] = queue.front();
    queue.pop_front();
    StateId from = ids.at(key(x, y));
    for (const auto& [sym_a, tx] : a.TransitionsFrom(x)) {
      for (const auto& [sym_b, ty] : b.TransitionsFrom(y)) {
        if (sym_a == sym_b) {
          out.AddTransition(from, sym_a, get_id(tx, ty));
        }
      }
    }
  }
  out.Finalize();
  return out;
}

Dfa ComplementDfa(const Dfa& dfa) {
  Dfa out = dfa.Completed();
  for (StateId s = 0; s < out.num_states(); ++s) {
    out.SetAccepting(s, !out.IsAccepting(s));
  }
  return out;
}

std::optional<Word> FindShortestAcceptedWord(const Nfa& nfa_in) {
  Nfa nfa_store(0);
  const Nfa& nfa = nfa_in.has_epsilon_transitions()
                       ? (nfa_store = RemoveEpsilons(nfa_in), nfa_store)
                       : nfa_in;
  constexpr uint64_t kRoot = static_cast<uint64_t>(-2);
  std::unordered_map<uint64_t, std::pair<uint64_t, Symbol>> parents;
  std::deque<StateId> queue;
  std::vector<bool> seen(nfa.num_states(), false);

  for (StateId s : nfa.initial_states()) {
    if (nfa.IsAccepting(s)) return Word{};
    if (!seen[s]) {
      seen[s] = true;
      parents.emplace(s, std::make_pair(kRoot, Symbol{0}));
      queue.push_back(s);
    }
  }
  while (!queue.empty()) {
    StateId s = queue.front();
    queue.pop_front();
    for (const auto& [a, t] : nfa.TransitionsFrom(s)) {
      if (seen[t]) continue;
      seen[t] = true;
      parents.emplace(t, std::make_pair(static_cast<uint64_t>(s), a));
      if (nfa.IsAccepting(t)) {
        return ReconstructWord(parents, t, kRoot);
      }
      queue.push_back(t);
    }
  }
  return std::nullopt;
}

std::optional<Word> FindShortestWordInIntersection(const Nfa& a_in,
                                                   const Nfa& b_in) {
  RPQ_CHECK_EQ(a_in.num_symbols(), b_in.num_symbols());
  // Avoid copying ε-free inputs: this function sits on the hot path of
  // RPNI merge trials, where `b` is often a large graph NFA.
  Nfa a_store(0);
  Nfa b_store(0);
  const Nfa& a = a_in.has_epsilon_transitions()
                     ? (a_store = RemoveEpsilons(a_in), a_store)
                     : a_in;
  const Nfa& b = b_in.has_epsilon_transitions()
                     ? (b_store = RemoveEpsilons(b_in), b_store)
                     : b_in;
  constexpr uint64_t kRoot = static_cast<uint64_t>(-2);

  auto key = [](StateId x, StateId y) {
    return (static_cast<uint64_t>(x) << 32) | y;
  };
  std::unordered_map<uint64_t, std::pair<uint64_t, Symbol>> parents;
  std::deque<std::pair<StateId, StateId>> queue;

  for (StateId x : a.initial_states()) {
    for (StateId y : b.initial_states()) {
      if (a.IsAccepting(x) && b.IsAccepting(y)) return Word{};
      if (parents.emplace(key(x, y), std::make_pair(kRoot, Symbol{0}))
              .second) {
        queue.emplace_back(x, y);
      }
    }
  }
  while (!queue.empty()) {
    auto [x, y] = queue.front();
    queue.pop_front();
    uint64_t from = key(x, y);
    // Two-pointer merge over the symbol-sorted transition lists.
    const auto& ta = a.TransitionsFrom(x);
    const auto& tb = b.TransitionsFrom(y);
    size_t i = 0;
    size_t j = 0;
    while (i < ta.size() && j < tb.size()) {
      if (ta[i].first < tb[j].first) {
        ++i;
        continue;
      }
      if (ta[i].first > tb[j].first) {
        ++j;
        continue;
      }
      const Symbol sym = ta[i].first;
      size_t i_end = i;
      while (i_end < ta.size() && ta[i_end].first == sym) ++i_end;
      size_t j_end = j;
      while (j_end < tb.size() && tb[j_end].first == sym) ++j_end;
      for (size_t p = i; p < i_end; ++p) {
        for (size_t q = j; q < j_end; ++q) {
          StateId tx = ta[p].second;
          StateId ty = tb[q].second;
          uint64_t to = key(tx, ty);
          if (!parents.emplace(to, std::make_pair(from, sym)).second) {
            continue;
          }
          if (a.IsAccepting(tx) && b.IsAccepting(ty)) {
            return ReconstructWord(parents, to, kRoot);
          }
          queue.emplace_back(tx, ty);
        }
      }
      i = i_end;
      j = j_end;
    }
  }
  return std::nullopt;
}

bool IntersectionIsEmpty(const Nfa& a, const Nfa& b) {
  return !FindShortestWordInIntersection(a, b).has_value();
}

}  // namespace rpqlearn
