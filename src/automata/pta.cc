#include "automata/pta.h"

#include <deque>

#include "util/logging.h"

namespace rpqlearn {

Dfa BuildPta(const std::vector<Word>& words, uint32_t num_symbols) {
  // Build the trie with insertion-order ids first.
  Dfa trie(num_symbols);
  StateId root = trie.AddState(false);
  for (const Word& word : words) {
    StateId current = root;
    for (Symbol a : word) {
      RPQ_CHECK_LT(a, num_symbols);
      StateId next = trie.Next(current, a);
      if (next == kNoState) {
        next = trie.AddState(false);
        trie.SetTransition(current, a, next);
      }
      current = next;
    }
    trie.SetAccepting(current, true);
  }

  // Renumber states in BFS order with symbol-ascending expansion, which is
  // exactly the canonical order of the access words.
  std::vector<StateId> mapping(trie.num_states(), kNoState);
  Dfa out(num_symbols);
  std::deque<StateId> queue{root};
  mapping[root] = out.AddState(trie.IsAccepting(root));
  while (!queue.empty()) {
    StateId s = queue.front();
    queue.pop_front();
    for (Symbol a = 0; a < num_symbols; ++a) {
      StateId t = trie.Next(s, a);
      if (t == kNoState) continue;
      mapping[t] = out.AddState(trie.IsAccepting(t));
      out.SetTransition(mapping[s], a, mapping[t]);
      queue.push_back(t);
    }
  }
  out.SetInitial(mapping[root]);
  return out;
}

}  // namespace rpqlearn
