#ifndef RPQLEARN_AUTOMATA_FOLD_H_
#define RPQLEARN_AUTOMATA_FOLD_H_

#include <vector>

#include "automata/dfa.h"

namespace rpqlearn {

/// Result of a determinization-preserving state merge.
struct FoldResult {
  /// The quotient automaton, trimmed to states reachable from the initial
  /// state and renumbered in BFS (canonical access-word) order.
  Dfa dfa{0};
  /// Mapping from old state ids to new ids (kNoState if unreachable).
  std::vector<StateId> old_to_new;
};

/// Merges state `b` into state `r` of `dfa` and restores determinism by
/// recursively merging conflicting successors ("folding"). This is the
/// `A_{s'→s}` operation of the paper's Algorithm 1 (lines 4–5), i.e. the
/// merge step of RPNI generalization. Accepting flags are OR-ed, so the
/// resulting language is a superset of the input language.
FoldResult FoldMerge(const Dfa& dfa, StateId r, StateId b);

/// Zero-copy trial-merge engine for RPNI generalization. Holds one flat copy
/// of the base DFA plus a union-find partition over its states; Fold()
/// applies the same cascade as FoldMerge() directly on the partition while
/// recording an undo log, so a rejected trial costs O(cells touched) to roll
/// back instead of an O(states × symbols) automaton copy. Accepted merges
/// call Materialize() — which produces exactly FoldMerge()'s BFS-renumbered
/// quotient — and then Reset() on the result.
///
/// Trial protocol: Fold(r, b), read the quotient through the view accessors
/// (InitialRep/NextRep/IsAcceptingRep), then either Rollback() or
/// Materialize() + Reset(). At most one Fold may be outstanding.
class MergePartition {
 public:
  explicit MergePartition(const Dfa& dfa) { Reset(dfa); }

  /// Rebuilds the partition over a new base DFA (identity classes).
  void Reset(const Dfa& dfa);

  /// Merges `b`'s class into `r`'s class and folds successors to restore
  /// determinism, mirroring FoldMerge()'s cascade order exactly.
  void Fold(StateId r, StateId b);

  /// Reverts all changes made by the outstanding Fold().
  void Rollback();

  /// The quotient DFA of the current partition, trimmed to states reachable
  /// from the initial class and BFS-renumbered with symbol-ascending
  /// expansion — byte-identical to FoldMerge(base, r, b) after Fold(r, b).
  FoldResult Materialize() const;

  // --- Quotient view (for consistency oracles) ------------------------
  uint32_t num_symbols() const { return num_symbols_; }
  /// Number of states of the base DFA (class ids live in [0, base_states)).
  uint32_t base_states() const { return static_cast<uint32_t>(parent_.size()); }
  /// Class representative of `s` (no path compression: reads are const).
  StateId Find(StateId s) const {
    while (parent_[s] != s) s = parent_[s];
    return s;
  }
  StateId InitialRep() const { return Find(initial_); }
  /// Representative of the a-successor class of class `rep`, or kNoState.
  /// `rep` must be a representative.
  StateId NextRep(StateId rep, Symbol a) const {
    StateId t = table_[static_cast<size_t>(rep) * num_symbols_ + a];
    return t == kNoState ? kNoState : Find(t);
  }
  bool IsAcceptingRep(StateId rep) const { return accepting_[rep] != 0; }

 private:
  enum class UndoKind : uint8_t { kParent, kAccepting, kTableCell };
  struct UndoEntry {
    size_t index;
    StateId old_value;
    UndoKind kind;
  };

  uint32_t num_symbols_ = 0;
  StateId initial_ = kNoState;
  std::vector<StateId> parent_;
  std::vector<uint8_t> accepting_;  // folded accepting flag, valid on reps
  std::vector<StateId> table_;      // folded rows, valid on reps
  std::vector<UndoEntry> undo_;
  std::vector<std::pair<StateId, StateId>> pending_;  // scratch for Fold
};

}  // namespace rpqlearn

#endif  // RPQLEARN_AUTOMATA_FOLD_H_
