#ifndef RPQLEARN_AUTOMATA_FOLD_H_
#define RPQLEARN_AUTOMATA_FOLD_H_

#include <vector>

#include "automata/dfa.h"

namespace rpqlearn {

/// Result of a determinization-preserving state merge.
struct FoldResult {
  /// The quotient automaton, trimmed to states reachable from the initial
  /// state and renumbered in BFS (canonical access-word) order.
  Dfa dfa{0};
  /// Mapping from old state ids to new ids (kNoState if unreachable).
  std::vector<StateId> old_to_new;
};

/// Merges state `b` into state `r` of `dfa` and restores determinism by
/// recursively merging conflicting successors ("folding"). This is the
/// `A_{s'→s}` operation of the paper's Algorithm 1 (lines 4–5), i.e. the
/// merge step of RPNI generalization. Accepting flags are OR-ed, so the
/// resulting language is a superset of the input language.
FoldResult FoldMerge(const Dfa& dfa, StateId r, StateId b);

}  // namespace rpqlearn

#endif  // RPQLEARN_AUTOMATA_FOLD_H_
