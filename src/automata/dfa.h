#ifndef RPQLEARN_AUTOMATA_DFA_H_
#define RPQLEARN_AUTOMATA_DFA_H_

#include <cstdint>
#include <vector>

#include "automata/nfa.h"
#include "automata/word.h"

namespace rpqlearn {

/// Deterministic finite automaton with a *partial* transition function
/// (missing transitions mean rejection). Queries are represented by their
/// canonical DFA; the paper measures query size as its number of states.
class Dfa {
 public:
  /// An automaton over symbols `{0, ..., num_symbols-1}`.
  explicit Dfa(uint32_t num_symbols) : num_symbols_(num_symbols) {}

  /// Adds a fresh state; the first state added becomes the initial state
  /// unless SetInitial() is called.
  StateId AddState(bool accepting = false);

  /// Defines `from --symbol--> to`, overwriting any previous target.
  void SetTransition(StateId from, Symbol symbol, StateId to);

  /// Removes the transition on `symbol` out of `from`, if any.
  void ClearTransition(StateId from, Symbol symbol);

  void SetInitial(StateId s);
  void SetAccepting(StateId s, bool accepting);

  /// Target of `from --symbol-->`, or kNoState if undefined.
  StateId Next(StateId from, Symbol symbol) const {
    return table_[static_cast<size_t>(from) * num_symbols_ + symbol];
  }

  StateId initial_state() const { return initial_; }
  bool IsAccepting(StateId s) const { return accepting_[s]; }

  uint32_t num_states() const {
    return static_cast<uint32_t>(accepting_.size());
  }
  uint32_t num_symbols() const { return num_symbols_; }

  /// Runs the automaton on `word` from state `from`; returns the final state
  /// or kNoState if a transition is missing along the way.
  StateId Run(StateId from, const Word& word) const;

  /// True iff `word` is in the language.
  bool Accepts(const Word& word) const;

  /// True iff every state has a transition on every symbol.
  bool IsComplete() const;

  /// Returns a complete copy: if any transition is missing, a rejecting sink
  /// state is appended and absorbs all missing transitions.
  Dfa Completed() const;

  /// Returns a copy with only reachable and co-reachable (live) states,
  /// renumbered in BFS order from the initial state with symbol-ascending
  /// tie-breaks. The initial state is always kept, so the empty language is
  /// represented by a single non-accepting state. If `old_to_new` is non-null
  /// it receives the mapping (kNoState for dropped states).
  Dfa Trimmed(std::vector<StateId>* old_to_new = nullptr) const;

  /// The same automaton as an NFA (no ε-transitions), for generic algorithms.
  Nfa ToNfa() const;

  /// All accepting state ids, ascending.
  std::vector<StateId> AcceptingStates() const;

  /// Number of defined transitions.
  size_t NumTransitions() const;

  /// True iff the language is empty (no accepting state reachable).
  bool IsEmptyLanguage() const;

  /// Structural equality: same states, transitions, initial and accepting
  /// sets. Canonicalized equivalent DFAs compare equal.
  friend bool operator==(const Dfa& a, const Dfa& b) {
    return a.num_symbols_ == b.num_symbols_ && a.initial_ == b.initial_ &&
           a.accepting_ == b.accepting_ && a.table_ == b.table_;
  }

 private:
  uint32_t num_symbols_;
  StateId initial_ = kNoState;
  std::vector<bool> accepting_;
  std::vector<StateId> table_;  // num_states x num_symbols, kNoState = none
};

}  // namespace rpqlearn

#endif  // RPQLEARN_AUTOMATA_DFA_H_
