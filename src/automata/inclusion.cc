#include "automata/inclusion.h"

#include <algorithm>
#include <deque>
#include <map>
#include <utility>
#include <vector>

#include "automata/ops.h"
#include "util/logging.h"

namespace rpqlearn {
namespace {

/// One explored configuration: a state of `a` paired with the subset of `b`
/// states reachable on the same word, plus BFS parent info for witnesses.
struct Config {
  StateId a_state;
  std::vector<StateId> b_subset;  // sorted
  int parent;                     // index into the config arena, -1 for roots
  Symbol via;
};

/// True iff `small` ⊆ `big`; both sorted.
bool SubsetLeq(const std::vector<StateId>& small,
               const std::vector<StateId>& big) {
  return std::includes(big.begin(), big.end(), small.begin(), small.end());
}

}  // namespace

StatusOr<InclusionResult> CheckLanguageInclusion(const Nfa& a_in,
                                                 const Nfa& b_in,
                                                 size_t max_explored) {
  RPQ_CHECK_EQ(a_in.num_symbols(), b_in.num_symbols());
  const Nfa a = RemoveEpsilons(a_in);
  const Nfa b = RemoveEpsilons(b_in);

  std::vector<Config> arena;
  std::deque<int> queue;
  // Antichain per a-state: the minimal b-subsets already explored.
  std::map<StateId, std::vector<std::vector<StateId>>> antichain;

  auto dominated = [&](StateId s, const std::vector<StateId>& subset) {
    auto it = antichain.find(s);
    if (it == antichain.end()) return false;
    for (const auto& kept : it->second) {
      if (SubsetLeq(kept, subset)) return true;
    }
    return false;
  };
  auto insert = [&](StateId s, const std::vector<StateId>& subset) {
    auto& sets = antichain[s];
    sets.erase(std::remove_if(sets.begin(), sets.end(),
                              [&](const std::vector<StateId>& kept) {
                                return SubsetLeq(subset, kept);
                              }),
               sets.end());
    sets.push_back(subset);
  };
  auto violates = [&](StateId s, const std::vector<StateId>& subset) {
    return a.IsAccepting(s) && !b.ContainsAccepting(subset);
  };
  auto witness = [&](int idx) {
    Word word;
    for (int i = idx; arena[i].parent >= 0; i = arena[i].parent) {
      word.push_back(arena[i].via);
    }
    std::reverse(word.begin(), word.end());
    return word;
  };

  std::vector<StateId> b_start = b.initial_states();
  std::sort(b_start.begin(), b_start.end());
  b_start = b.EpsilonClosure(std::move(b_start));

  for (StateId s : a.initial_states()) {
    if (dominated(s, b_start)) continue;
    if (violates(s, b_start)) {
      return InclusionResult{false, Word{}};
    }
    insert(s, b_start);
    arena.push_back(Config{s, b_start, -1, 0});
    queue.push_back(static_cast<int>(arena.size()) - 1);
  }

  while (!queue.empty()) {
    int idx = queue.front();
    queue.pop_front();
    if (arena.size() > max_explored) {
      return Status::ResourceExhausted(
          "inclusion check exceeded exploration cap");
    }
    // Copy: arena may reallocate when pushing successors.
    const Config current = arena[idx];
    for (const auto& [symbol, a_next] : a.TransitionsFrom(current.a_state)) {
      std::vector<StateId> b_next = b.Step(current.b_subset, symbol);
      if (dominated(a_next, b_next)) continue;
      if (violates(a_next, b_next)) {
        arena.push_back(Config{a_next, std::move(b_next), idx, symbol});
        return InclusionResult{
            false, witness(static_cast<int>(arena.size()) - 1)};
      }
      insert(a_next, b_next);
      arena.push_back(Config{a_next, std::move(b_next), idx, symbol});
      queue.push_back(static_cast<int>(arena.size()) - 1);
    }
  }
  return InclusionResult{true, std::nullopt};
}

}  // namespace rpqlearn
