#include "automata/fold.h"

#include <deque>
#include <numeric>
#include <utility>
#include <vector>

#include "util/logging.h"

namespace rpqlearn {
namespace {

StateId Find(std::vector<StateId>* parent, StateId x) {
  while ((*parent)[x] != x) {
    (*parent)[x] = (*parent)[(*parent)[x]];
    x = (*parent)[x];
  }
  return x;
}

/// Builds the quotient DFA over class representatives: trimmed to states
/// reachable from the initial class, BFS-renumbered with symbol-ascending
/// expansion. Shared by FoldMerge and MergePartition::Materialize, whose
/// outputs must stay byte-identical.
template <typename AcceptingVec, typename FindFn>
FoldResult BuildQuotient(uint32_t n, uint32_t sigma, StateId initial,
                         const std::vector<StateId>& table,
                         const AcceptingVec& accepting, FindFn find) {
  FoldResult result;
  result.old_to_new.assign(n, kNoState);
  Dfa out(sigma);
  StateId init = find(initial);
  std::vector<StateId> rep_to_new(n, kNoState);
  std::deque<StateId> queue{init};
  rep_to_new[init] = out.AddState(static_cast<bool>(accepting[init]));
  while (!queue.empty()) {
    StateId s = queue.front();
    queue.pop_front();
    for (Symbol a = 0; a < sigma; ++a) {
      StateId t = table[static_cast<size_t>(s) * sigma + a];
      if (t == kNoState) continue;
      t = find(t);
      if (rep_to_new[t] == kNoState) {
        rep_to_new[t] = out.AddState(static_cast<bool>(accepting[t]));
        queue.push_back(t);
      }
      out.SetTransition(rep_to_new[s], a, rep_to_new[t]);
    }
  }
  out.SetInitial(rep_to_new[init]);
  for (StateId s = 0; s < n; ++s) {
    result.old_to_new[s] = rep_to_new[find(s)];
  }
  result.dfa = std::move(out);
  return result;
}

}  // namespace

FoldResult FoldMerge(const Dfa& dfa, StateId r, StateId b) {
  RPQ_CHECK_LT(r, dfa.num_states());
  RPQ_CHECK_LT(b, dfa.num_states());
  const uint32_t n = dfa.num_states();
  const uint32_t sigma = dfa.num_symbols();

  std::vector<StateId> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  std::vector<bool> accepting(n);
  std::vector<StateId> table(static_cast<size_t>(n) * sigma);
  for (StateId s = 0; s < n; ++s) {
    accepting[s] = dfa.IsAccepting(s);
    for (Symbol a = 0; a < sigma; ++a) {
      table[static_cast<size_t>(s) * sigma + a] = dfa.Next(s, a);
    }
  }

  std::deque<std::pair<StateId, StateId>> pending;
  pending.emplace_back(r, b);
  while (!pending.empty()) {
    auto [x_raw, y_raw] = pending.front();
    pending.pop_front();
    StateId x = Find(&parent, x_raw);
    StateId y = Find(&parent, y_raw);
    if (x == y) continue;
    // Merge y's class into x's class and fold y's transition row into x's.
    parent[y] = x;
    if (accepting[y]) accepting[x] = true;
    for (Symbol a = 0; a < sigma; ++a) {
      StateId ty = table[static_cast<size_t>(y) * sigma + a];
      if (ty == kNoState) continue;
      StateId& tx = table[static_cast<size_t>(x) * sigma + a];
      if (tx == kNoState) {
        tx = ty;
      } else {
        pending.emplace_back(tx, ty);
      }
    }
  }

  return BuildQuotient(n, sigma, dfa.initial_state(), table, accepting,
                       [&parent](StateId s) { return Find(&parent, s); });
}

void MergePartition::Reset(const Dfa& dfa) {
  const uint32_t n = dfa.num_states();
  num_symbols_ = dfa.num_symbols();
  initial_ = dfa.initial_state();
  parent_.resize(n);
  std::iota(parent_.begin(), parent_.end(), 0);
  accepting_.resize(n);
  table_.resize(static_cast<size_t>(n) * num_symbols_);
  for (StateId s = 0; s < n; ++s) {
    accepting_[s] = dfa.IsAccepting(s) ? 1 : 0;
    for (Symbol a = 0; a < num_symbols_; ++a) {
      table_[static_cast<size_t>(s) * num_symbols_ + a] = dfa.Next(s, a);
    }
  }
  undo_.clear();
}

void MergePartition::Fold(StateId r, StateId b) {
  RPQ_CHECK_LT(r, base_states());
  RPQ_CHECK_LT(b, base_states());
  RPQ_CHECK(undo_.empty()) << "Fold() with an outstanding trial";
  pending_.clear();
  pending_.emplace_back(r, b);
  // FIFO cascade identical to FoldMerge()'s deque (a cursor into a vector
  // avoids deque churn). Find() skips path compression so every mutation
  // goes through the undo log.
  for (size_t head = 0; head < pending_.size(); ++head) {
    auto [x_raw, y_raw] = pending_[head];
    StateId x = Find(x_raw);
    StateId y = Find(y_raw);
    if (x == y) continue;
    undo_.push_back({y, parent_[y], UndoKind::kParent});
    parent_[y] = x;
    if (accepting_[y] && !accepting_[x]) {
      undo_.push_back({x, 0, UndoKind::kAccepting});
      accepting_[x] = 1;
    }
    for (Symbol a = 0; a < num_symbols_; ++a) {
      StateId ty = table_[static_cast<size_t>(y) * num_symbols_ + a];
      if (ty == kNoState) continue;
      const size_t x_cell = static_cast<size_t>(x) * num_symbols_ + a;
      if (table_[x_cell] == kNoState) {
        undo_.push_back({x_cell, kNoState, UndoKind::kTableCell});
        table_[x_cell] = ty;
      } else {
        pending_.emplace_back(table_[x_cell], ty);
      }
    }
  }
}

void MergePartition::Rollback() {
  for (size_t i = undo_.size(); i > 0; --i) {
    const UndoEntry& e = undo_[i - 1];
    switch (e.kind) {
      case UndoKind::kParent:
        parent_[e.index] = e.old_value;
        break;
      case UndoKind::kAccepting:
        accepting_[e.index] = 0;
        break;
      case UndoKind::kTableCell:
        table_[e.index] = e.old_value;
        break;
    }
  }
  undo_.clear();
}

FoldResult MergePartition::Materialize() const {
  return BuildQuotient(base_states(), num_symbols_, initial_, table_,
                       accepting_, [this](StateId s) { return Find(s); });
}

}  // namespace rpqlearn
