#include "automata/fold.h"

#include <deque>
#include <numeric>
#include <utility>
#include <vector>

#include "util/logging.h"

namespace rpqlearn {
namespace {

StateId Find(std::vector<StateId>* parent, StateId x) {
  while ((*parent)[x] != x) {
    (*parent)[x] = (*parent)[(*parent)[x]];
    x = (*parent)[x];
  }
  return x;
}

}  // namespace

FoldResult FoldMerge(const Dfa& dfa, StateId r, StateId b) {
  RPQ_CHECK_LT(r, dfa.num_states());
  RPQ_CHECK_LT(b, dfa.num_states());
  const uint32_t n = dfa.num_states();
  const uint32_t sigma = dfa.num_symbols();

  std::vector<StateId> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  std::vector<bool> accepting(n);
  std::vector<StateId> table(static_cast<size_t>(n) * sigma);
  for (StateId s = 0; s < n; ++s) {
    accepting[s] = dfa.IsAccepting(s);
    for (Symbol a = 0; a < sigma; ++a) {
      table[static_cast<size_t>(s) * sigma + a] = dfa.Next(s, a);
    }
  }

  std::deque<std::pair<StateId, StateId>> pending;
  pending.emplace_back(r, b);
  while (!pending.empty()) {
    auto [x_raw, y_raw] = pending.front();
    pending.pop_front();
    StateId x = Find(&parent, x_raw);
    StateId y = Find(&parent, y_raw);
    if (x == y) continue;
    // Merge y's class into x's class and fold y's transition row into x's.
    parent[y] = x;
    if (accepting[y]) accepting[x] = true;
    for (Symbol a = 0; a < sigma; ++a) {
      StateId ty = table[static_cast<size_t>(y) * sigma + a];
      if (ty == kNoState) continue;
      StateId& tx = table[static_cast<size_t>(x) * sigma + a];
      if (tx == kNoState) {
        tx = ty;
      } else {
        pending.emplace_back(tx, ty);
      }
    }
  }

  // Build the quotient over representatives, BFS-renumbered from the initial
  // representative with symbol-ascending expansion.
  FoldResult result;
  result.old_to_new.assign(n, kNoState);
  Dfa out(sigma);
  StateId init = Find(&parent, dfa.initial_state());
  std::vector<StateId> rep_to_new(n, kNoState);
  std::deque<StateId> queue{init};
  rep_to_new[init] = out.AddState(accepting[init]);
  while (!queue.empty()) {
    StateId s = queue.front();
    queue.pop_front();
    for (Symbol a = 0; a < sigma; ++a) {
      StateId t = table[static_cast<size_t>(s) * sigma + a];
      if (t == kNoState) continue;
      t = Find(&parent, t);
      if (rep_to_new[t] == kNoState) {
        rep_to_new[t] = out.AddState(accepting[t]);
        queue.push_back(t);
      }
      out.SetTransition(rep_to_new[s], a, rep_to_new[t]);
    }
  }
  out.SetInitial(rep_to_new[init]);
  for (StateId s = 0; s < n; ++s) {
    result.old_to_new[s] = rep_to_new[Find(&parent, s)];
  }
  result.dfa = std::move(out);
  return result;
}

}  // namespace rpqlearn
