#ifndef RPQLEARN_AUTOMATA_EQUIVALENCE_H_
#define RPQLEARN_AUTOMATA_EQUIVALENCE_H_

#include "automata/dfa.h"
#include "automata/nfa.h"

namespace rpqlearn {

/// Language equality of two DFAs via the Hopcroft–Karp union-find algorithm
/// (near-linear, no minimization needed).
bool AreEquivalent(const Dfa& a, const Dfa& b);

/// Structural isomorphism of two partial DFAs via a synchronized walk from
/// the initial states. Canonicalized DFAs of the same language are
/// isomorphic (indeed equal).
bool AreIsomorphic(const Dfa& a, const Dfa& b);

/// Language equality of two NFAs; determinizes both, so exponential in the
/// worst case. Intended for tests and small inputs.
bool AreEquivalentNfa(const Nfa& a, const Nfa& b);

}  // namespace rpqlearn

#endif  // RPQLEARN_AUTOMATA_EQUIVALENCE_H_
